//! `perfrec`: the BENCH perf record. Times every parallel-runner bin
//! serial vs parallel (same seeds, byte-compared JSON), A/Bs the periodic
//! eviction sweep (candidate index vs full scan), A/Bs the control plane
//! (single omniscient coordinator vs 3-replica Raft-style group with
//! gossip membership — DESIGN.md §16), and writes the result as a
//! `BENCH_<n>.json` record so the perf trajectory of this repo is
//! machine-readable PR over PR.
//!
//! Invocation (after `cargo build --release`):
//!
//! ```text
//! cargo run --release -p ofc-bench --bin perfrec
//! ```
//!
//! Record 10 adds the mega-scale sections: a timed serial full-scale
//! `run_mega` headline (events/sec at ≥100k functions / ≥1k tenants), a
//! per-policy mega-mix bake-off, and the failover drill re-run against a
//! mega smoke window (control-plane overhead at scale).
//!
//! Environment:
//! * `OFC_PERFREC_MINS` — macro window for the timed bins (default 5).
//! * `OFC_PERFREC_MIN_SPEEDUP` — when set, exit non-zero if the raw-speed
//!   speedup (full-window serial `macro24` vs the 13 s pre-interning
//!   baseline) falls below it, if the serial and parallel `macro24`
//!   JSON diverge, or if any bin with real fan-out (>1 worker) and a
//!   measurable serial pass (≥1 s) regressed below 1.0x (CI regression
//!   guard). `2.6` encodes the ISSUE 9 target "serial macro24 < 5 s"
//!   (13 / 5).
//! * `OFC_PERFREC_MEGA=0` — skip the slow full-scale mega headline
//!   timing (minutes of wall; CI skips it and relies on the committed
//!   record plus the `mega-smoke` job).
//! * `OFC_PERFREC_LTO_CHECK=1` — additionally time `macro24` serially at
//!   the full 30-minute window, filling the LTO after-measurement of the
//!   committed record (slow; off in CI).
//! * `OFC_BENCH_RECORD` — output path (default `BENCH_10.json`).
//! * `OFC_BENCH_THREADS` — worker count for the parallel pass (default:
//!   available parallelism).

use ofc_bench::cachex::{run_macro_bakeoff, run_macro_hooked};
use ofc_bench::megarun::{run_mega, tail_hit_pct, MegaOpts};
use ofc_bench::par;
use ofc_bench::scenario::{PlaneKind, Testbed};
use ofc_core::ofc::OfcConfig;
use ofc_core::policy::PolicyKind;
use ofc_telemetry::names;
use ofc_telemetry::Telemetry;
use ofc_workloads::faasload::TenantProfile;
use ofc_workloads::mega::MegaConfig;
use serde::Serialize;
use std::cell::RefCell;
use std::path::{Path, PathBuf};
use std::process::Command;
use std::rc::Rc;
use std::time::{Duration, Instant};

/// The bins ported to the parallel replay runner, with their fan-out
/// widths (independent sims per invocation).
const PAR_BINS: &[(&str, u64)] = &[
    ("macro24", 14),
    ("fig9", 6),
    ("fig10", 3),
    ("ablation", 11),
    ("chaos", 2),
    ("bakeoff", 3),
    ("macro_mega", 6),
];

/// Pre-thin-LTO `macro24` wall time: 30-minute window, serial, measured on
/// the 1-core reference dev box at the commit introducing this record
/// (before `[profile.release] lto = "thin"` / `codegen-units = 1`).
const MACRO24_PRE_LTO_SERIAL_S: f64 = 14.67;

/// Pre-interning-campaign `macro24` wall time: full 30-minute window,
/// serial, measured at the record-8 commit (ROADMAP item 2's "serial
/// macro24 ~13 s" bottleneck) before the key-interning / calendar-queue /
/// integer-entropy rewrite landed in record 9.
const MACRO24_PRE_INTERN_SERIAL_S: f64 = 13.0;

#[derive(Serialize)]
struct BinTiming {
    bin: String,
    sims: u64,
    serial_s: f64,
    parallel_s: f64,
    speedup: f64,
    json_identical: bool,
    /// What the runner actually did on the timed "parallel" pass:
    /// `"parallel"`, or `"serial-fallback"` when the bin's fan-out is
    /// below the `min_par_sims` threshold and `run_jobs` stayed on the
    /// calling thread (thread spawn/join costs more than it recovers on
    /// 2–3 sim bins — the record-6 fig10 row measured 0.94x).
    mode: &'static str,
}

#[derive(Serialize)]
struct SweepSide {
    visited: u64,
    evictions: u64,
    wall_s: f64,
}

#[derive(Serialize)]
struct SweepRecord {
    indexed: SweepSide,
    full_scan: SweepSide,
    /// `full_scan.visited / indexed.visited` — the sweep-cost reduction
    /// bought by the eviction-candidate index.
    visited_ratio: f64,
}

#[derive(Serialize)]
struct LtoRecord {
    macro24_serial_before_s: f64,
    /// Filled by `OFC_PERFREC_LTO_CHECK=1` (30-minute window, serial);
    /// `null` when the slow check was skipped.
    macro24_serial_after_s: Option<f64>,
}

#[derive(Serialize)]
struct PolicyTiming {
    policy: String,
    wall_s: f64,
    hit_ratio_pct: f64,
}

/// One per-policy run over the mega-mix window (DESIGN.md §18): the
/// bake-off re-run at multi-tenant heavy-tail scale.
#[derive(Serialize)]
struct MegaPolicyTiming {
    policy: String,
    wall_s: f64,
    hit_ratio_pct: f64,
    /// Hit ratio of the tail tenant deciles (5..9) — where rival
    /// policies actually differ under a heavy-tailed tenant mix.
    tail_hit_pct: f64,
    failed: u64,
}

/// One side of the mega-scale control-plane drill.
#[derive(Serialize)]
struct MegaCoordSide {
    wall_s: f64,
    events: u64,
    hit_ratio_pct: f64,
    failed: u64,
    raft_commits: u64,
    raft_elections: u64,
    degraded_bypasses: u64,
}

/// The failover drill re-run against the mega smoke window: default
/// single coordinator (fault-free) vs a 3-replica group with gossip
/// membership *and* a worker crash + restart mid-window. The wall
/// overhead is the control-plane price at mega tenant counts.
#[derive(Serialize)]
struct MegaFailoverRecord {
    single: MegaCoordSide,
    replicated_crash: MegaCoordSide,
    /// `100 * (replicated_crash.wall_s / single.wall_s - 1)`.
    wall_overhead_pct: f64,
}

/// The timed full-scale mega headline: serial, in-process, same
/// configuration as the `macro_mega` bin's headline variant.
#[derive(Serialize)]
struct MegaScaleRecord {
    tenants: usize,
    functions: usize,
    arrivals: u64,
    failed: u64,
    events: u64,
    wall_s: f64,
    /// The scale-campaign headline: simulator events per wall second.
    events_per_sec: f64,
    hit_ratio_pct: f64,
    tail_hit_pct: f64,
    usage_fairness_bps: u64,
}

#[derive(Serialize)]
struct CoordSide {
    wall_s: f64,
    hit_ratio_pct: f64,
    /// Sum of per-function execution time across the window (the latency
    /// the platform's tenants actually observe).
    total_exec_s: f64,
    /// Control-plane mutations committed through the replicated log
    /// (zero on the single-coordinator side: no log exists).
    raft_commits: u64,
}

/// Fault-free control-plane A/B (DESIGN.md §16): the same Fig 9 macro
/// window with the default single coordinator vs a 3-replica group with
/// gossip membership. The exec-time delta is the end-to-end price of
/// commit-on-majority consensus on every tablet assignment.
#[derive(Serialize)]
struct FailoverRecord {
    single: CoordSide,
    replicated: CoordSide,
    /// `100 * (replicated.total_exec_s / single.total_exec_s - 1)`.
    exec_overhead_pct: f64,
}

/// The raw-speed campaign's headline number (ISSUE 9): serial `macro24`
/// at the *full* 30-minute window, against the pre-campaign baseline.
#[derive(Serialize)]
struct RawSpeedRecord {
    /// Wall seconds of `macro24` with `OFC_BENCH_THREADS=1` at the
    /// default 30-minute window, measured by this run.
    macro24_serial_full_s: f64,
    /// The same measurement at the record-8 commit, before interning.
    macro24_serial_before_s: f64,
    speedup: f64,
}

#[derive(Serialize)]
struct BenchRecord {
    record: u64,
    window_mins: u64,
    threads: usize,
    /// Fan-out floor for the parallel path ([`par::min_par_sims`]); bins
    /// below it report `mode = "serial-fallback"`.
    min_par_sims: usize,
    raw_speed: RawSpeedRecord,
    bins: Vec<BinTiming>,
    /// One in-process Fig 9 macro run per cache policy (DESIGN.md §15):
    /// the bake-off's wall-time record.
    policies: Vec<PolicyTiming>,
    /// The bake-off re-run per policy on the mega-mix window (§18).
    mega_policies: Vec<MegaPolicyTiming>,
    evict_sweep: SweepRecord,
    coordinator: FailoverRecord,
    /// Control-plane drill against the mega smoke window.
    mega_failover: MegaFailoverRecord,
    /// Timed full-scale serial mega headline (events/sec); `null` when
    /// `OFC_PERFREC_MEGA=0` skipped the slow measurement (CI).
    mega: Option<MegaScaleRecord>,
    lto: LtoRecord,
    /// Sims executed through the parallel runner across the parallel pass
    /// (also recorded as the `bench.par_runs` counter).
    par_runs: u64,
}

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Directory holding the sibling release binaries.
fn bin_dir() -> PathBuf {
    let exe = std::env::current_exe().expect("current exe path");
    exe.parent().expect("exe has a parent dir").to_path_buf()
}

/// Runs one bin into `scratch` with the given worker count, returning its
/// wall time.
fn run_bin(bin: &str, threads: usize, mins: u64, scratch: &Path) -> f64 {
    std::fs::create_dir_all(scratch).expect("scratch dir");
    let path = bin_dir().join(bin);
    let started = Instant::now();
    let out = Command::new(&path)
        .env("OFC_MACRO_MINS", mins.to_string())
        .env("OFC_MEGA_SMOKE", "1") // only macro_mega reads this; harmless elsewhere
        .env("OFC_BENCH_THREADS", threads.to_string())
        .env("OFC_RESULTS_DIR", scratch)
        .output()
        .unwrap_or_else(|e| panic!("perfrec: failed to launch {}: {e}", path.display()));
    let wall = started.elapsed().as_secs_f64();
    assert!(
        out.status.success(),
        "perfrec: {bin} exited with {:?}\n{}",
        out.status,
        String::from_utf8_lossy(&out.stderr)
    );
    wall
}

/// Whether every `.json` file in `a` exists byte-identical in `b` (and
/// vice versa) — the serial-vs-parallel determinism check.
fn dirs_identical(a: &Path, b: &Path) -> bool {
    let mut names: Vec<String> = std::fs::read_dir(a)
        .expect("scratch dir listing")
        .filter_map(|e| e.ok())
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .collect();
    names.sort();
    if names.is_empty() {
        return false;
    }
    names.iter().all(|name| {
        let (fa, fb) = (std::fs::read(a.join(name)), std::fs::read(b.join(name)));
        matches!((fa, fb), (Ok(da), Ok(db)) if da == db)
    })
}

/// One in-process macro run with the chosen eviction-sweep mode, reading
/// the janitor counters off the testbed's observability plane.
fn sweep_side(full_scan: bool, mins: u64) -> SweepSide {
    let mut cfg = OfcConfig::default();
    cfg.agent.evict_full_scan = full_scan;
    let stash: Rc<RefCell<Option<Telemetry>>> = Rc::new(RefCell::new(None));
    let sink = Rc::clone(&stash);
    let started = Instant::now();
    run_macro_hooked(
        PlaneKind::Ofc,
        TenantProfile::Normal,
        1,
        Duration::from_secs(60 * mins),
        23,
        cfg,
        64 << 30,
        move |tb: &mut Testbed| {
            let ofc = tb.ofc.as_ref().expect("ofc testbed");
            *sink.borrow_mut() = Some(ofc.telemetry().clone());
        },
    );
    let wall_s = started.elapsed().as_secs_f64();
    let telemetry = stash.borrow_mut().take().expect("hook ran");
    let m = telemetry.metrics();
    SweepSide {
        visited: m.counter(names::AGENT_EVICT_SCAN_VISITED),
        evictions: m.counter(names::AGENT_PERIODIC_EVICTIONS),
        wall_s,
    }
}

/// One in-process macro run under the given control-plane layout, reading
/// hit ratio, tenant-observed exec time, and the raft commit counter.
fn coord_side(cfg: OfcConfig, mins: u64) -> CoordSide {
    let stash: Rc<RefCell<Option<Telemetry>>> = Rc::new(RefCell::new(None));
    let sink = Rc::clone(&stash);
    let started = Instant::now();
    let result = run_macro_hooked(
        PlaneKind::Ofc,
        TenantProfile::Normal,
        1,
        Duration::from_secs(60 * mins),
        29,
        cfg,
        64 << 30,
        move |tb: &mut Testbed| {
            let ofc = tb.ofc.as_ref().expect("ofc testbed");
            *sink.borrow_mut() = Some(ofc.telemetry().clone());
        },
    );
    let wall_s = started.elapsed().as_secs_f64();
    let telemetry = stash.borrow_mut().take().expect("hook ran");
    CoordSide {
        wall_s,
        hit_ratio_pct: result.table2.hit_ratio_pct,
        total_exec_s: result.per_function_total_s.values().sum(),
        raft_commits: telemetry.metrics().counter(names::RAFT_COMMITS),
    }
}

fn main() {
    let mins = env_u64("OFC_PERFREC_MINS", 5);
    let threads = par::threads();
    let scratch_root = std::env::temp_dir().join(format!("ofc-perfrec-{}", std::process::id()));

    println!("perfrec — BENCH record ({mins} min window, {threads} workers)\n");

    // Raw-speed headline first: serial macro24 at the full default window.
    let full_dir = scratch_root.join("macro24-full-serial");
    let macro24_serial_full_s = {
        std::fs::create_dir_all(&full_dir).expect("scratch dir");
        let path = bin_dir().join("macro24");
        let started = Instant::now();
        let out = Command::new(&path)
            .env("OFC_BENCH_THREADS", "1")
            .env("OFC_RESULTS_DIR", &full_dir)
            .output()
            .unwrap_or_else(|e| panic!("perfrec: failed to launch {}: {e}", path.display()));
        assert!(
            out.status.success(),
            "perfrec: macro24 (full window) exited with {:?}\n{}",
            out.status,
            String::from_utf8_lossy(&out.stderr)
        );
        started.elapsed().as_secs_f64()
    };
    let raw_speed = RawSpeedRecord {
        macro24_serial_full_s,
        macro24_serial_before_s: MACRO24_PRE_INTERN_SERIAL_S,
        speedup: MACRO24_PRE_INTERN_SERIAL_S / macro24_serial_full_s.max(1e-9),
    };
    println!(
        "  raw speed: macro24 serial (full 30 min window) {macro24_serial_full_s:.2}s \
         (pre-interning {MACRO24_PRE_INTERN_SERIAL_S}s, {:.2}x)\n",
        raw_speed.speedup
    );

    let mut bins = Vec::new();
    let mut par_runs = 0u64;
    for &(bin, sims) in PAR_BINS {
        let serial_dir = scratch_root.join(format!("{bin}-serial"));
        let parallel_dir = scratch_root.join(format!("{bin}-parallel"));
        let serial_s = run_bin(bin, 1, mins, &serial_dir);
        let parallel_s = run_bin(bin, threads, mins, &parallel_dir);
        let json_identical = dirs_identical(&serial_dir, &parallel_dir);
        let speedup = serial_s / parallel_s.max(1e-9);
        // `threads <= 1` takes the runner's serial in-line path, so a
        // 1-core box honestly reports serial-fallback for every bin —
        // its "parallel" pass re-times the same serial loop and any
        // delta is noise (the record-9 macro24 0.93x row was exactly
        // that: both passes serial on one core).
        let mode = if threads <= 1 || (sims as usize) < par::min_par_sims() {
            "serial-fallback"
        } else {
            "parallel"
        };
        println!(
            "  {bin:10} serial {serial_s:6.2}s   parallel {parallel_s:6.2}s   speedup {speedup:4.2}x   json {}   [{mode}]",
            if json_identical { "identical" } else { "DIVERGED" }
        );
        par_runs += sims;
        bins.push(BinTiming {
            bin: bin.into(),
            sims,
            serial_s,
            parallel_s,
            speedup,
            json_identical,
            mode,
        });
    }
    std::fs::remove_dir_all(&scratch_root).ok();

    println!("\n  policy bake-off ({mins} min window, in-process):");
    let mut policies = Vec::new();
    for (kind, name) in [
        (PolicyKind::Ofc, "ofc"),
        (PolicyKind::Faast, "faast"),
        (PolicyKind::InfiniCache, "infinicache"),
    ] {
        let started = Instant::now();
        let (result, _extras) = run_macro_bakeoff(
            kind,
            TenantProfile::Normal,
            1,
            Duration::from_secs(60 * mins),
            17,
        );
        let wall_s = started.elapsed().as_secs_f64();
        println!(
            "    {name:12} wall {wall_s:5.2}s   hit {:5.1}%",
            result.table2.hit_ratio_pct
        );
        policies.push(PolicyTiming {
            policy: name.into(),
            wall_s,
            hit_ratio_pct: result.table2.hit_ratio_pct,
        });
    }

    println!("\n  policy bake-off on the mega mix (in-process):");
    let mut mega_policies = Vec::new();
    for (kind, name) in [
        (PolicyKind::Ofc, "ofc"),
        (PolicyKind::Faast, "faast"),
        (PolicyKind::InfiniCache, "infinicache"),
    ] {
        let mut opts = MegaOpts::new(format!("mix-{name}"), MegaConfig::mix());
        opts.ofc.policy = kind;
        let started = Instant::now();
        let r = run_mega(opts);
        let wall_s = started.elapsed().as_secs_f64();
        let tail = tail_hit_pct(&r);
        println!(
            "    {name:12} wall {wall_s:5.2}s   hit {:5.1}%   tail hit {tail:5.1}%   failed {}",
            r.hit_ratio_pct, r.failed
        );
        mega_policies.push(MegaPolicyTiming {
            policy: name.into(),
            wall_s,
            hit_ratio_pct: r.hit_ratio_pct,
            tail_hit_pct: tail,
            failed: r.failed,
        });
    }

    println!("\n  eviction sweep A/B ({mins} min window, in-process):");
    let indexed = sweep_side(false, mins);
    let full_scan = sweep_side(true, mins);
    println!(
        "    indexed    visited {:6}   evictions {:4}   wall {:5.2}s",
        indexed.visited, indexed.evictions, indexed.wall_s
    );
    println!(
        "    full scan  visited {:6}   evictions {:4}   wall {:5.2}s",
        full_scan.visited, full_scan.evictions, full_scan.wall_s
    );
    let visited_ratio = full_scan.visited as f64 / indexed.visited.max(1) as f64;

    println!("\n  control-plane A/B ({mins} min window, fault-free, in-process):");
    let single = coord_side(OfcConfig::default(), mins);
    let replicated = coord_side(
        OfcConfig {
            coordinator_replicas: 3,
            gossip: true,
            ..OfcConfig::default()
        },
        mins,
    );
    println!(
        "    single      wall {:5.2}s   hit {:5.1}%   exec {:7.1}s",
        single.wall_s, single.hit_ratio_pct, single.total_exec_s
    );
    println!(
        "    3 replicas  wall {:5.2}s   hit {:5.1}%   exec {:7.1}s   {} commits",
        replicated.wall_s,
        replicated.hit_ratio_pct,
        replicated.total_exec_s,
        replicated.raft_commits
    );
    let exec_overhead_pct = if single.total_exec_s > 0.0 {
        100.0 * (replicated.total_exec_s / single.total_exec_s - 1.0)
    } else {
        0.0
    };
    println!("    consensus exec overhead: {exec_overhead_pct:+.2}%");

    println!("\n  mega failover drill (smoke window, in-process):");
    let mega_side = |label: &str, replicated: bool| {
        let mut opts = MegaOpts::new(label, MegaConfig::smoke());
        if replicated {
            opts.ofc.coordinator_replicas = 3;
            opts.ofc.gossip = true;
            opts.crash_drill = true;
        }
        let started = Instant::now();
        let r = run_mega(opts);
        MegaCoordSide {
            wall_s: started.elapsed().as_secs_f64(),
            events: r.events,
            hit_ratio_pct: r.hit_ratio_pct,
            failed: r.failed,
            raft_commits: r.raft_commits,
            raft_elections: r.raft_elections,
            degraded_bypasses: r.degraded_bypasses,
        }
    };
    let mega_single = mega_side("mega-single", false);
    let mega_replicated = mega_side("mega-replicated-crash", true);
    println!(
        "    single            wall {:5.2}s   hit {:5.1}%   failed {}",
        mega_single.wall_s, mega_single.hit_ratio_pct, mega_single.failed
    );
    println!(
        "    3 replicas+crash  wall {:5.2}s   hit {:5.1}%   failed {}   {} commits   {} elections   {} bypasses",
        mega_replicated.wall_s,
        mega_replicated.hit_ratio_pct,
        mega_replicated.failed,
        mega_replicated.raft_commits,
        mega_replicated.raft_elections,
        mega_replicated.degraded_bypasses
    );
    let mega_wall_overhead_pct = if mega_single.wall_s > 0.0 {
        100.0 * (mega_replicated.wall_s / mega_single.wall_s - 1.0)
    } else {
        0.0
    };
    println!("    control-plane wall overhead at mega scale: {mega_wall_overhead_pct:+.2}%");
    let mega_failover = MegaFailoverRecord {
        single: mega_single,
        replicated_crash: mega_replicated,
        wall_overhead_pct: mega_wall_overhead_pct,
    };

    let mega = if std::env::var("OFC_PERFREC_MEGA").map(|v| v == "0") == Ok(true) {
        println!("\n  mega headline: skipped (OFC_PERFREC_MEGA=0)");
        None
    } else {
        println!("\n  mega headline: timing the full-scale run serially (minutes)...");
        let started = Instant::now();
        let r = run_mega(MegaOpts::headline());
        let wall_s = started.elapsed().as_secs_f64();
        let events_per_sec = r.events as f64 / wall_s.max(1e-9);
        println!(
            "    {} tenants   {} functions   {} events   wall {wall_s:.1}s   {:.0} events/s   hit {:.1}%",
            r.tenants, r.functions, r.events, events_per_sec, r.hit_ratio_pct
        );
        Some(MegaScaleRecord {
            tenants: r.tenants,
            functions: r.functions,
            arrivals: r.arrivals,
            failed: r.failed,
            events: r.events,
            wall_s,
            events_per_sec,
            hit_ratio_pct: r.hit_ratio_pct,
            tail_hit_pct: tail_hit_pct(&r),
            usage_fairness_bps: r.usage_fairness_bps,
        })
    };

    let lto_after = if std::env::var("OFC_PERFREC_LTO_CHECK").map(|v| v == "1") == Ok(true) {
        println!("\n  LTO check: timing macro24 serially at the 30 min window...");
        let dir = std::env::temp_dir().join(format!("ofc-perfrec-lto-{}", std::process::id()));
        let s = run_bin("macro24", 1, 30, &dir);
        std::fs::remove_dir_all(&dir).ok();
        println!("    macro24 serial: {s:.2}s (pre-LTO baseline {MACRO24_PRE_LTO_SERIAL_S}s)");
        Some(s)
    } else {
        None
    };

    // The parallel pass's sim count, surfaced on the registered counter so
    // the record and the telemetry plane agree on the name.
    let telemetry = Telemetry::standalone();
    telemetry.counter(names::BENCH_PAR_RUNS).add(par_runs);
    let par_runs = telemetry.metrics().counter(names::BENCH_PAR_RUNS);

    let record = BenchRecord {
        record: 10,
        window_mins: mins,
        threads,
        min_par_sims: par::min_par_sims(),
        raw_speed,
        bins,
        policies,
        mega_policies,
        evict_sweep: SweepRecord {
            indexed,
            full_scan,
            visited_ratio,
        },
        coordinator: FailoverRecord {
            single,
            replicated,
            exec_overhead_pct,
        },
        mega_failover,
        mega,
        lto: LtoRecord {
            macro24_serial_before_s: MACRO24_PRE_LTO_SERIAL_S,
            macro24_serial_after_s: lto_after,
        },
        par_runs,
    };
    let path = std::env::var("OFC_BENCH_RECORD").unwrap_or_else(|_| "BENCH_10.json".into());
    let json = serde_json::to_string_pretty(&record).expect("serializable record");
    std::fs::write(&path, json).unwrap_or_else(|e| panic!("writing {path}: {e}"));
    println!("\n[saved {path}]");

    // CI regression guard — three claims:
    //  1. determinism: serial and parallel macro24 JSON stay identical;
    //  2. raw speed: the full-window serial macro24 run stays ahead of the
    //     13 s pre-interning baseline by at least the requested factor;
    //  3. fan-out: any bin that actually took the parallel path must not
    //     run slower than serial. Cost-ordered claiming keeps the widest
    //     sims off the tail of the schedule; the gate only reads bins
    //     with real fan-out (threads > 1 — see the `mode` computation)
    //     whose serial pass is long enough to measure. Sub-second bins
    //     flip a few percent either way on timer jitter and thread
    //     spawn/join, which is not a claim about claiming order.
    // The floor moved off the fan-out speedup in the interning PR: with the
    // serial run under 4 s, thread fan-out at the smoke window nets ~1x and
    // no longer measures anything durable — the raw-speed ratio does.
    const GATE_MIN_SERIAL_S: f64 = 1.0;
    if let Ok(min) = std::env::var("OFC_PERFREC_MIN_SPEEDUP") {
        let min: f64 = min.parse().expect("OFC_PERFREC_MIN_SPEEDUP is a number");
        let m24 = record
            .bins
            .iter()
            .find(|b| b.bin == "macro24")
            .expect("macro24 timed");
        if !m24.json_identical {
            eprintln!("PERF GUARD: macro24 serial and parallel JSON diverged");
            std::process::exit(1);
        }
        for b in &record.bins {
            if b.mode == "parallel" && b.serial_s >= GATE_MIN_SERIAL_S && b.speedup < 1.0 {
                eprintln!(
                    "PERF GUARD: {} took the parallel path but ran {:.2}x vs serial \
                     (below 1.0x) — fan-out must never cost wall time",
                    b.bin, b.speedup
                );
                std::process::exit(1);
            }
        }
        if record.raw_speed.speedup < min {
            eprintln!(
                "PERF GUARD: raw-speed speedup {:.2}x (serial full-window macro24 \
                 {:.2}s vs {:.0}s pre-interning) below the {min:.2}x floor",
                record.raw_speed.speedup,
                record.raw_speed.macro24_serial_full_s,
                record.raw_speed.macro24_serial_before_s,
            );
            std::process::exit(1);
        }
    }
}
