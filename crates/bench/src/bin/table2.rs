//! Table 2: OFC internal metrics during the macro workload, per tenant
//! profile (§7.2.2).
//!
//! Set `OFC_MACRO_MINS` to shorten the observation window.

use ofc_bench::cachex::run_macro;
use ofc_bench::report;
use ofc_bench::scenario::PlaneKind;
use ofc_workloads::faasload::TenantProfile;
use std::time::Duration;

fn main() {
    let mins: u64 = std::env::var("OFC_MACRO_MINS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(30);
    let dur = Duration::from_secs(60 * mins);
    let profiles = [
        TenantProfile::Normal,
        TenantProfile::Advanced,
        TenantProfile::Naive,
    ];
    let results: Vec<_> = profiles
        .iter()
        .map(|&p| run_macro(PlaneKind::Ofc, p, 1, dur, 17))
        .collect();

    println!("Table 2 — OFC internal metrics ({mins} min window, 8 tenants)\n");
    let metric = |name: &str, f: &dyn Fn(&ofc_bench::cachex::Table2) -> String| {
        let mut row = vec![name.to_string()];
        for r in &results {
            row.push(f(&r.table2));
        }
        row
    };
    let rows = vec![
        metric("# scale up", &|t| t.scale_ups.to_string()),
        metric("total scale up time (s)", &|t| {
            format!("{:.2}", t.scale_up_time_s)
        }),
        metric("# scale down (no eviction)", &|t| {
            t.scale_down_no_eviction.to_string()
        }),
        metric("# scale down (migration)", &|t| {
            t.scale_down_migration.to_string()
        }),
        metric("# scale down (eviction)", &|t| {
            t.scale_down_eviction.to_string()
        }),
        metric("total scale down time (s)", &|t| {
            format!("{:.2}", t.scale_down_time_s)
        }),
        metric("# bad predictions", &|t| t.bad_predictions.to_string()),
        metric("# good predictions", &|t| t.good_predictions.to_string()),
        metric("# failed invocations", &|t| {
            t.failed_invocations.to_string()
        }),
        metric("cache hit ratio (%)", &|t| {
            format!("{:.2}", t.hit_ratio_pct)
        }),
        metric("ephemeral data generated (GB)", &|t| {
            format!("{:.1}", t.ephemeral_gb)
        }),
    ];
    println!(
        "{}",
        report::table(&["metric", "Normal", "Advanced", "Naive"], &rows)
    );
    println!(
        "Paper reference (30 min): ~95 scale-ups, ~225 no-eviction scale-downs,\n\
         4-7 migrations, 0 evictions, 7 bad / ~231 good predictions, 0 failed\n\
         invocations, hit ratio 93.1-98.9%."
    );
    report::save_json("table2", &results);
}
