//! Policy bake-off (DESIGN.md §15): the same Fig 9 macro mix driven by
//! three cache-policy brains — OFC (the paper's ML-gated default), Faa$T
//! (per-application anchored caches with frequency prefetch), and
//! InfiniCache (erasure-coded cold parking in rented sandboxes) — and
//! compared head-to-head on hit ratio, E+L latency, memory footprint,
//! and cold-tier cost.
//!
//! * `OFC_MACRO_MINS` shortens the observation window (default 30).
//! * `OFC_MACRO_SMOKE=1` runs a fixed 2-minute window and saves
//!   `bakeoff_smoke.json` instead — the golden suite's regression probe
//!   and CI's `bakeoff-smoke` job.
//! * `OFC_BAKEOFF_CHECK=1` runs every policy twice and exits non-zero if
//!   the passes disagree (determinism violation).
//!
//! The full (non-smoke) run additionally re-fights the bake-off on the
//! mega mix (DESIGN.md §18): 200 heavy-tailed tenants per policy, scored
//! on overall and tail-decile hit ratio. `results/bakeoff.json` then
//! carries both sections (`macro_mix` + `mega_mix`); the smoke JSON
//! keeps the original flat shape so the golden stays byte-stable.
//!
//! The run also exits non-zero if any policy strands write-backs (pending
//! or dead-lettered) at the end of the window: rival policies may trade
//! hit ratio for memory or rent, but never durability.

use ofc_bench::cachex::{run_macro_bakeoff, MacroExtras, MacroResult};
use ofc_bench::megarun::{run_mega, tail_hit_pct, MegaOpts, MegaReport};
use ofc_bench::par;
use ofc_bench::report;
use ofc_core::policy::PolicyKind;
use ofc_workloads::faasload::TenantProfile;
use ofc_workloads::mega::MegaConfig;
use serde::Serialize;
use std::time::Duration;

const POLICIES: [(PolicyKind, &str); 3] = [
    (PolicyKind::Ofc, "ofc"),
    (PolicyKind::Faast, "faast"),
    (PolicyKind::InfiniCache, "infinicache"),
];

/// One comparison row of `results/bakeoff.json`. Wall-clock times are
/// deliberately absent — they go to the BENCH record, never into golden
/// JSON.
#[derive(Debug, Clone, Serialize, PartialEq)]
struct Row {
    policy: String,
    hit_ratio_pct: f64,
    total_latency_s: f64,
    el_seconds: f64,
    peak_cache_gb: f64,
    mean_cache_gb: f64,
    rental_cost_nanodollars: u64,
    cold_hits: u64,
    prefetches: u64,
    failed_invocations: u64,
}

/// One mega-mix comparison row (full mode only). Wall times stay out for
/// the same reason as [`Row`].
#[derive(Debug, Clone, Serialize, PartialEq)]
struct MegaRow {
    policy: String,
    hit_ratio_pct: f64,
    /// Tail-decile (5..9) hit ratio — where rival policies actually
    /// diverge under a heavy-tailed tenant mix.
    tail_hit_pct: f64,
    usage_fairness_bps: u64,
    failed: u64,
    events: u64,
}

/// The full-mode `results/bakeoff.json` payload: the Fig 9 macro rows
/// plus the mega-mix rows.
#[derive(Serialize)]
struct FullReport {
    macro_mix: Vec<Row>,
    mega_mix: Vec<MegaRow>,
}

fn mega_row(name: &str, r: &MegaReport) -> MegaRow {
    MegaRow {
        policy: name.into(),
        hit_ratio_pct: r.hit_ratio_pct,
        tail_hit_pct: tail_hit_pct(r),
        usage_fairness_bps: r.usage_fairness_bps,
        failed: r.failed,
        events: r.events,
    }
}

fn row(name: &str, result: &MacroResult, extras: &MacroExtras) -> Row {
    Row {
        policy: name.into(),
        hit_ratio_pct: result.table2.hit_ratio_pct,
        total_latency_s: result.per_function_total_s.values().sum(),
        el_seconds: extras.el_seconds,
        peak_cache_gb: extras.peak_cache_gb,
        mean_cache_gb: extras.mean_cache_gb,
        rental_cost_nanodollars: extras.rental_cost_nanodollars,
        cold_hits: extras.cold_hits,
        prefetches: extras.prefetches,
        failed_invocations: result.table2.failed_invocations,
    }
}

fn main() {
    let smoke = std::env::var("OFC_MACRO_SMOKE")
        .map(|v| v == "1")
        .unwrap_or(false);
    let check = std::env::var("OFC_BAKEOFF_CHECK")
        .map(|v| v == "1")
        .unwrap_or(false);
    let mins: u64 = if smoke {
        2
    } else {
        std::env::var("OFC_MACRO_MINS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(30)
    };
    let dur = Duration::from_secs(60 * mins);
    let passes = if check { 2 } else { 1 };

    // Each (pass, policy) pair is an independent sim; the bench harness is
    // exempt from the wall-clock ban, so per-policy wall time rides along
    // for the BENCH record (stderr only).
    type Job = Box<dyn FnOnce() -> (MacroResult, MacroExtras, f64) + Send>;
    let mut jobs: Vec<Job> = Vec::new();
    for _pass in 0..passes {
        for (kind, _) in POLICIES {
            jobs.push(Box::new(move || {
                let t0 = std::time::Instant::now();
                let (result, extras) = run_macro_bakeoff(kind, TenantProfile::Normal, 1, dur, 17);
                (result, extras, t0.elapsed().as_secs_f64())
            }));
        }
    }
    let results = par::run_jobs(jobs);

    let mut failures: Vec<String> = Vec::new();
    let mut pass_rows: Vec<Vec<Row>> = Vec::new();
    for (pass, chunk) in results.chunks_exact(POLICIES.len()).enumerate() {
        let mut rows = Vec::new();
        for ((_, name), (result, extras, wall_s)) in POLICIES.iter().zip(chunk) {
            eprintln!("[bakeoff wall] pass {pass} {name} {wall_s:.3}s");
            if extras.persist_pending != 0 || extras.persist_dead_letters != 0 {
                failures.push(format!(
                    "{name}: durability violation — {} pending, {} dead-lettered write-backs",
                    extras.persist_pending, extras.persist_dead_letters
                ));
            }
            rows.push(row(name, result, extras));
        }
        pass_rows.push(rows);
    }
    if check {
        let a = serde_json::to_string(&pass_rows[0]).expect("serializable rows");
        let b = serde_json::to_string(&pass_rows[1]).expect("serializable rows");
        if a != b {
            eprintln!("bakeoff: determinism violation — the two passes disagree");
            std::process::exit(3);
        }
        eprintln!("bakeoff: determinism check passed (two identical passes)");
    }
    let rows = &pass_rows[0];

    println!("Policy bake-off — Fig 9 macro mix, Normal profile ({mins} min window)\n");
    let cells: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.policy.clone(),
                format!("{:.1}%", r.hit_ratio_pct),
                report::fmt_secs(r.total_latency_s),
                report::fmt_secs(r.el_seconds),
                format!("{:.2}", r.peak_cache_gb),
                format!("{:.2}", r.mean_cache_gb),
                r.rental_cost_nanodollars.to_string(),
                r.cold_hits.to_string(),
                r.prefetches.to_string(),
                r.failed_invocations.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        report::table(
            &[
                "policy",
                "hit ratio",
                "total latency",
                "E+L",
                "peak GB",
                "mean GB",
                "rent (nd)",
                "cold hits",
                "prefetches",
                "failed",
            ],
            &cells,
        )
    );
    println!(
        "OFC's ML gate trades a slightly lower hit ratio for a smaller footprint;\n\
         Faa$T admits everything (higher footprint), InfiniCache pays rent for its\n\
         cold tier instead of RAM."
    );

    if smoke {
        report::save_json("bakeoff_smoke", rows);
    } else {
        // The mega-mix re-fight: one heavy-tailed 200-tenant window per
        // policy, fanned out like the macro rows.
        type MegaJob = Box<dyn FnOnce() -> (MegaReport, f64) + Send>;
        let mega_jobs: Vec<MegaJob> = POLICIES
            .iter()
            .map(|&(kind, name)| {
                Box::new(move || {
                    let mut opts = MegaOpts::new(format!("mix-{name}"), MegaConfig::mix());
                    opts.ofc.policy = kind;
                    let t0 = std::time::Instant::now();
                    (run_mega(opts), t0.elapsed().as_secs_f64())
                }) as MegaJob
            })
            .collect();
        let mega_results = par::run_jobs(mega_jobs);
        let mut mega_rows = Vec::new();
        for ((_, name), (r, wall_s)) in POLICIES.iter().zip(&mega_results) {
            eprintln!("[bakeoff wall] mega {name} {wall_s:.3}s");
            if r.persist_pending != 0 || r.persist_dead_letters != 0 {
                failures.push(format!(
                    "{name} (mega): durability violation — {} pending, {} dead-lettered write-backs",
                    r.persist_pending, r.persist_dead_letters
                ));
            }
            mega_rows.push(mega_row(name, r));
        }
        println!("\nPolicy bake-off — mega mix, 200 heavy-tailed tenants (30 min window)\n");
        let mega_cells: Vec<Vec<String>> = mega_rows
            .iter()
            .map(|r| {
                vec![
                    r.policy.clone(),
                    format!("{:.1}%", r.hit_ratio_pct),
                    format!("{:.1}%", r.tail_hit_pct),
                    r.usage_fairness_bps.to_string(),
                    r.failed.to_string(),
                    r.events.to_string(),
                ]
            })
            .collect();
        println!(
            "{}",
            report::table(
                &[
                    "policy",
                    "hit ratio",
                    "tail hit",
                    "fair-bps",
                    "failed",
                    "events"
                ],
                &mega_cells,
            )
        );
        report::save_json(
            "bakeoff",
            &FullReport {
                macro_mix: rows.clone(),
                mega_mix: mega_rows,
            },
        );
    }

    if !failures.is_empty() {
        for f in &failures {
            eprintln!("bakeoff: {f}");
        }
        std::process::exit(2);
    }
}
