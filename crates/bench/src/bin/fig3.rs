//! Figure 3: ETL phase split for `sharp_resize` (image sizes in kB) and the
//! MapReduce word count (text sizes in MB), against the RSDS vs an IMOC —
//! the motivation measurement of §2.2.3.

use ofc_bench::cachex::{pipeline, single_stage, App, Scenario};
use ofc_bench::report;
use ofc_bench::{KB, MB};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    workload: String,
    input: String,
    config: String,
    e_ms: f64,
    t_ms: f64,
    l_ms: f64,
    el_share_pct: f64,
}

fn main() {
    let mut rows = Vec::new();
    // (a) sharp_resize over image sizes; Swift stands in for S3 (same
    // latency class, see DESIGN.md).
    for kb in [32u64, 64, 128, 256, 512, 1024] {
        for scenario in [Scenario::Swift, Scenario::Redis] {
            let p = single_stage("sharp_resize", kb * KB, scenario, 3);
            rows.push(Row {
                workload: "sharp_resize".into(),
                input: format!("{kb}KB"),
                config: if scenario == Scenario::Swift {
                    "RSDS"
                } else {
                    "Redis"
                }
                .into(),
                e_ms: p.e * 1e3,
                t_ms: p.t * 1e3,
                l_ms: p.l * 1e3,
                el_share_pct: 100.0 * (p.e + p.l) / p.total(),
            });
        }
    }
    // (b) MapReduce word count over text sizes.
    for mb in [5u64, 10, 20, 30] {
        for scenario in [Scenario::Swift, Scenario::Redis] {
            let r = pipeline(App::MapReduce, mb * MB, 8, scenario, 3);
            let p = r.phases;
            rows.push(Row {
                workload: "map_reduce".into(),
                input: format!("{mb}MB"),
                config: if scenario == Scenario::Swift {
                    "RSDS"
                } else {
                    "Redis"
                }
                .into(),
                e_ms: p.e * 1e3,
                t_ms: p.t * 1e3,
                l_ms: p.l * 1e3,
                el_share_pct: 100.0 * (p.e + p.l) / p.total(),
            });
        }
    }

    println!("Figure 3 — ETL phase durations, RSDS vs IMOC\n");
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.workload.clone(),
                r.input.clone(),
                r.config.clone(),
                format!("{:.1}", r.e_ms),
                format!("{:.1}", r.t_ms),
                format!("{:.1}", r.l_ms),
                format!("{:.1}%", r.el_share_pct),
            ]
        })
        .collect();
    println!(
        "{}",
        report::table(
            &[
                "workload",
                "input",
                "config",
                "E (ms)",
                "T (ms)",
                "L (ms)",
                "E&L share"
            ],
            &table_rows,
        )
    );
    println!(
        "Paper reference: E&L up to 97% of sharp_resize at 128 kB on S3, up to 52%\n\
         of map_reduce at 30 MB; negligible with Redis."
    );
    report::save_json("fig3", &rows);
}
