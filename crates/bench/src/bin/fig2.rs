//! Figure 2: memory usage of `wand_blur` vs input byte size (top) and vs
//! the blurring sigma (bottom) — the motivation scatter showing neither
//! observable predicts memory alone (§2.2.2).

use ofc_bench::mlx::fig2;
use ofc_bench::report;

fn main() {
    let points = fig2(600, 42);
    println!(
        "Figure 2 — wand_blur memory usage ({} invocations)\n",
        points.len()
    );

    // Coarse ASCII rendition of the two scatters.
    let max_mem = points.iter().map(|p| p.mem_mb).fold(0.0, f64::max);
    println!("memory vs input size (MB):");
    for decade in [0.01, 0.1, 1.0, 8.0] {
        let bucket: Vec<f64> = points
            .iter()
            .filter(|p| p.input_mb >= decade && p.input_mb < decade * 10.0)
            .map(|p| p.mem_mb)
            .collect();
        if bucket.is_empty() {
            continue;
        }
        let lo = bucket.iter().copied().fold(f64::MAX, f64::min);
        let hi = bucket.iter().copied().fold(0.0, f64::max);
        println!(
            "  input {decade:>5.2}–{:<6.1} MB -> mem {lo:>6.0}–{hi:<6.0} MB  (n={})",
            decade * 10.0,
            bucket.len()
        );
    }
    println!("\nmemory vs sigma:");
    for s in 0..6 {
        let bucket: Vec<f64> = points
            .iter()
            .filter(|p| p.sigma >= s as f64 && p.sigma < (s + 1) as f64)
            .map(|p| p.mem_mb)
            .collect();
        if bucket.is_empty() {
            continue;
        }
        let lo = bucket.iter().copied().fold(f64::MAX, f64::min);
        let hi = bucket.iter().copied().fold(0.0, f64::max);
        println!(
            "  sigma {s}–{} -> mem {lo:>6.0}–{hi:<6.0} MB  (n={})",
            s + 1,
            bucket.len()
        );
    }
    println!(
        "\nmax memory {max_mem:.0} MB (paper's Figure 2 peaks near 896 MB); wide vertical\n\
         spread at every x confirms no single observable predicts memory."
    );
    report::save_json("fig2", &points);
}
