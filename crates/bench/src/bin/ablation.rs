//! Ablation study of the design choices DESIGN.md §6 calls out:
//!
//! 1. next-greater-interval safety margin (on/off),
//! 2. migration-by-promotion vs plain eviction during reclamation,
//! 3. the cache-benefit gate (on/off),
//! 4. locality-aware routing (on/off),
//! 5. write-back shadows vs write-through vs lazy persistence.
//!
//! Every variant is an independent simulation; all eleven fan out through
//! [`ofc_bench::par`] and report in a fixed order.
//!
//! Set `OFC_MACRO_MINS` to shorten the macro-based ablations (default 10).

use ofc_bench::cachex::{pin, run_macro_with, stage_input, Scenario};
use ofc_bench::par;
use ofc_bench::report;
use ofc_bench::scenario::{register_single, testbed_with, PlaneKind, WORKER_NODES};
use ofc_core::cache::WritePolicy;
use ofc_core::ofc::OfcConfig;
use ofc_workloads::catalog::gen_image_with_bytes;
use ofc_workloads::faasload::TenantProfile;
use rand::SeedableRng;
use serde::Serialize;
use std::time::Duration;

#[derive(Serialize)]
struct AblationOut {
    margin: Vec<(String, u64, u64, u64)>,
    reclamation: Vec<(String, f64, u64, u64)>,
    benefit_gate: Vec<(String, f64, u64)>,
    locality: Vec<(String, u64, u64)>,
    write_policy: Vec<(String, f64)>,
}

/// One ablation variant's result — the jobs are heterogeneous, so the
/// runner carries a tagged row and `main` demuxes by tag.
enum Row {
    Margin(String, u64, u64, u64),
    Reclamation(String, u64, u64, u64),
    Gate(String, f64, f64),
    Locality(String, u64, u64),
    Write(String, f64),
}

/// Objects staged by the reclamation ablation.
const RECLAIM_OBJECTS: u64 = 64;

fn macro_mins() -> u64 {
    std::env::var("OFC_MACRO_MINS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(10)
}

/// 1. Safety margin: without the next-greater interval, raw
///    underpredictions hit the OOM killer instead of being absorbed.
fn margin_case(label: &str, margin: u64, dur: Duration) -> Row {
    let mut cfg = OfcConfig::default();
    cfg.ml.safety_margin_intervals = margin;
    let r = run_macro_with(PlaneKind::Ofc, TenantProfile::Normal, 1, dur, 31, cfg);
    Row::Margin(
        label.into(),
        r.table2.bad_predictions,
        r.table2.good_predictions,
        r.table2.failed_invocations,
    )
}

/// 2. Reclamation: migration keeps hot objects cached (reads still hit
///    after the cache shrinks); pure eviction loses them.
fn reclamation_case(label: &str, hot_threshold: u64) -> Row {
    use ofc_faas::MemoryBroker;
    let mut cfg = OfcConfig::default();
    cfg.agent.hot_access_threshold = hot_threshold;
    let tb = testbed_with(PlaneKind::Ofc, WORKER_NODES, 32, cfg);
    let ofc = tb.ofc.as_ref().expect("ofc");
    let mut sim = ofc_simtime::Sim::new(32);
    // Fill node 0 with hot 8 MB objects, then shrink its pool hard.
    let n_objects = RECLAIM_OBJECTS;
    {
        let mut cluster = ofc.cluster.borrow_mut();
        for i in 0..n_objects {
            let key = ofc_rcstore::Key::from(format!("hot{i}"));
            cluster
                .write_with_dirty(
                    0,
                    &key,
                    ofc_rcstore::Value::synthetic(8 << 20),
                    ofc_simtime::SimTime::ZERO,
                    false,
                )
                .result
                .expect("fits");
            for _ in 0..6 {
                cluster
                    .read(0, &key, ofc_simtime::SimTime::ZERO)
                    .result
                    .ok();
            }
        }
    }
    let total = 16u64 << 30;
    let mut broker = ofc.agent.clone();
    broker
        .reserve(&mut sim, 0, 0, total - (300 << 20), total)
        .expect("reserve succeeds");
    let mut survivors = 0u64;
    {
        let mut cluster = ofc.cluster.borrow_mut();
        for i in 0..n_objects {
            let key = ofc_rcstore::Key::from(format!("hot{i}"));
            if cluster
                .read(0, &key, ofc_simtime::SimTime::ZERO)
                .result
                .is_ok()
            {
                survivors += 1;
            }
        }
    }
    let m = ofc.metrics();
    Row::Reclamation(
        label.into(),
        survivors,
        m.counter("agent.scale_downs_migration"),
        m.counter("agent.scale_downs_eviction"),
    )
}

/// 3. Benefit gate: caching everything wastes agent work on compute-bound
///    invocations without improving their latency.
fn gate_case(label: &str, disable: bool, dur: Duration) -> Row {
    let cfg = OfcConfig {
        disable_benefit_gate: disable,
        ..OfcConfig::default()
    };
    let r = run_macro_with(PlaneKind::Ofc, TenantProfile::Normal, 1, dur, 33, cfg);
    let total: f64 = r.per_function_total_s.values().sum();
    Row::Gate(label.into(), total, r.table2.hit_ratio_pct)
}

/// 4. Locality routing: a second function reading the same cached input is
///    routed to the master's node only when locality routing is on.
fn locality_case(label: &str, disable: bool) -> Row {
    let cfg = OfcConfig {
        disable_locality_routing: disable,
        ..OfcConfig::default()
    };
    let mut tb = testbed_with(PlaneKind::Ofc, WORKER_NODES, 34, cfg);
    let tenant = ofc_faas::TenantId::from("abl");
    for name in ["wand_edge", "wand_sepia", "wand_rotate", "wand_crop"] {
        let p = ofc_workloads::multimedia::profile(name).expect("known");
        register_single(&tb, &tenant, p, 512 << 20);
    }
    // Seed the cache: the input's master lands on node 0.
    // ofc-lint: allow(rng) reason=fixed experiment id for the ablation grid, pinned so rows replay bit-for-bit
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(34);
    let meta = gen_image_with_bytes(64 << 10, &mut rng);
    let input = stage_input(&mut tb, Scenario::LocalHit, meta, "shared");
    // Four different functions (distinct home nodes) read it cold.
    for (i, name) in ["wand_edge", "wand_sepia", "wand_rotate", "wand_crop"]
        .into_iter()
        .enumerate()
    {
        let p = ofc_workloads::multimedia::profile(name).expect("known");
        let mut args = ofc_faas::Args::new();
        args.insert("input".into(), ofc_faas::ArgValue::Obj(input.id));
        if let Some(spec) = p.arg {
            args.insert(
                spec.name.into(),
                ofc_faas::ArgValue::Num((spec.lo + spec.hi) / 2.0),
            );
        }
        let platform = tb.platform.clone();
        tb.sim
            .schedule_at(ofc_simtime::SimTime::from_secs(i as u64 * 10), move |sim| {
                platform.submit(
                    sim,
                    ofc_faas::InvocationRequest {
                        function: ofc_faas::FunctionId::from(name),
                        tenant,
                        args,
                        seed: i as u64,
                        pipeline: None,
                    },
                );
            });
    }
    tb.sim.run_until(ofc_simtime::SimTime::from_secs(300));
    let m = tb.ofc.as_ref().expect("ofc").metrics();
    Row::Locality(
        label.into(),
        m.counter("plane.local_hits"),
        m.counter("plane.remote_hits"),
    )
}

/// 5. Write policy: L-phase latency of a cached final output.
fn write_policy_case(label: &str, policy: WritePolicy) -> Row {
    let mut cfg = OfcConfig::default();
    cfg.plane.write_policy = policy;
    let mut tb = testbed_with(PlaneKind::Ofc, WORKER_NODES, 35, cfg);
    let tenant = ofc_faas::TenantId::from("abl");
    let p = ofc_workloads::multimedia::profile("wand_edge").expect("known");
    register_single(&tb, &tenant, p, 512 << 20);
    pin(&tb, 512 << 20);
    // ofc-lint: allow(rng) reason=fixed experiment id for the ablation grid, pinned so rows replay bit-for-bit
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(35);
    let meta = gen_image_with_bytes(64 << 10, &mut rng);
    let input = stage_input(&mut tb, Scenario::LocalHit, meta, "in");
    let mut args = ofc_faas::Args::new();
    args.insert("input".into(), ofc_faas::ArgValue::Obj(input.id));
    args.insert("radius".into(), ofc_faas::ArgValue::Num(3.0));
    tb.platform.submit(
        &mut tb.sim,
        ofc_faas::InvocationRequest {
            function: ofc_faas::FunctionId::from("wand_edge"),
            tenant,
            args,
            seed: 1,
            pipeline: None,
        },
    );
    tb.sim.run_until(ofc_simtime::SimTime::from_secs(60));
    let recs = tb.platform.drain_records();
    Row::Write(label.into(), recs[0].l_time.as_secs_f64() * 1e3)
}

fn main() {
    let dur = Duration::from_secs(60 * macro_mins());
    let jobs: Vec<Box<dyn FnOnce() -> Row + Send>> = vec![
        Box::new(move || margin_case("with margin", 1, dur)),
        Box::new(move || margin_case("no margin", 0, dur)),
        Box::new(|| reclamation_case("migrate hot", 5)),
        Box::new(|| reclamation_case("evict all", u64::MAX)),
        Box::new(move || gate_case("gated", false, dur)),
        Box::new(move || gate_case("cache all", true, dur)),
        Box::new(|| locality_case("locality", false)),
        Box::new(|| locality_case("hash only", true)),
        Box::new(|| write_policy_case("write-back shadow", WritePolicy::WriteBackShadow)),
        Box::new(|| write_policy_case("write-through", WritePolicy::WriteThrough)),
        Box::new(|| write_policy_case("lazy", WritePolicy::Lazy)),
    ];
    let mut out = AblationOut {
        margin: vec![],
        reclamation: vec![],
        benefit_gate: vec![],
        locality: vec![],
        write_policy: vec![],
    };
    let mut reclamation_print = Vec::new();
    let mut gate_print = Vec::new();
    for row in par::run_jobs(jobs) {
        match row {
            Row::Margin(l, bad, good, failed) => out.margin.push((l, bad, good, failed)),
            Row::Reclamation(l, survivors, mig, ev) => {
                out.reclamation.push((
                    l.clone(),
                    survivors as f64 / RECLAIM_OBJECTS as f64,
                    mig,
                    ev,
                ));
                reclamation_print.push((l, survivors, mig, ev));
            }
            Row::Gate(l, total, hit_pct) => {
                out.benefit_gate.push((l.clone(), total, hit_pct as u64));
                gate_print.push((l, total, hit_pct));
            }
            Row::Locality(l, local, remote) => out.locality.push((l, local, remote)),
            Row::Write(l, ms) => out.write_policy.push((l, ms)),
        }
    }

    println!("== 1. next-greater-interval safety margin ==");
    for (label, bad, good, failed) in &out.margin {
        println!("  {label:12} bad predictions {bad:4}  good {good:5}  failed {failed}");
    }
    println!("\n== 2. migration-by-promotion vs eviction-only reclamation ==");
    for (label, survivors, migrations, evictions) in &reclamation_print {
        println!(
            "  {label:12} surviving hot objects {survivors:2}/{RECLAIM_OBJECTS}  migrations {migrations:3}  evictions {evictions:3}"
        );
    }
    println!("\n== 3. cache-benefit gate ==");
    for (label, total, hit_pct) in &gate_print {
        println!("  {label:12} total exec {total:7.1}s  hit ratio {hit_pct:5.1}%");
    }
    println!("\n== 4. locality-aware routing ==");
    for (label, local_hits, remote_hits) in &out.locality {
        println!("  {label:12} local hits {local_hits:3}  remote hits {remote_hits:3}");
    }
    println!("\n== 5. write policy (wand_edge @64 kB, local hit) ==");
    for (label, l_ms) in &out.write_policy {
        println!("  {label:18} L-phase {l_ms:7.2} ms");
    }

    report::save_json("ablation", &out);
}
