//! Parallel replay runner: fans independent simulations out over scoped
//! worker threads.
//!
//! Every experiment configuration in this harness is a self-contained
//! [`ofc_simtime::Sim`] — the `Rc`-based testbed is built *inside* the
//! worker and only plain `Send` results cross the thread boundary — so
//! replay campaigns parallelize perfectly with no shared state. Results
//! come back in submission order, which keeps the emitted figure JSON
//! byte-identical to a serial run regardless of worker count or
//! scheduling: determinism lives in the per-sim seeds, not in the order
//! work happens to finish.
//!
//! `OFC_BENCH_THREADS` pins the worker count (`1` forces the serial
//! in-line path); the default is the machine's available parallelism.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Worker count for [`run_jobs`]: `OFC_BENCH_THREADS` when set and
/// parseable, otherwise the machine's available parallelism (1 when even
/// that is unknown).
pub fn threads() -> usize {
    std::env::var("OFC_BENCH_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        })
}

/// Default for [`min_par_sims`]: bins with fewer sims than this run
/// serially. Thread spawn/join overhead on a 2–3 sim bin costs more than
/// the parallelism recovers (the fig10 bin measured 0.94× with workers).
pub const DEFAULT_MIN_PAR_SIMS: usize = 4;

/// Minimum job count for the parallel path, `OFC_BENCH_MIN_PAR_SIMS`
/// overriding [`DEFAULT_MIN_PAR_SIMS`]. `0`/`1` make every multi-job bin
/// parallel again.
pub fn min_par_sims() -> usize {
    std::env::var("OFC_BENCH_MIN_PAR_SIMS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(DEFAULT_MIN_PAR_SIMS)
}

/// Runs every job and returns their results in submission order, fanning
/// out over [`threads`] scoped workers — unless the bin is smaller than
/// [`min_par_sims`], in which case it runs serially on the caller.
pub fn run_jobs<T, F>(jobs: Vec<F>) -> Vec<T>
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    let workers = if jobs.len() < min_par_sims() {
        1
    } else {
        threads()
    };
    run_jobs_on(workers, jobs)
}

/// [`run_jobs`] with a cost estimate per job: tickets are claimed in
/// descending estimated cost, so the widest sims start first and the bin's
/// wall clock is not hostage to a big job landing last on a busy worker
/// (the record-9 `macro24` row measured 0.93x with the two 3-tenant
/// contended sims submitted — and therefore claimed — last). Results
/// still come back in submission order, so emitted JSON is unchanged.
pub fn run_jobs_costed<T, F>(jobs: Vec<(f64, F)>) -> Vec<T>
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    let workers = if jobs.len() < min_par_sims() {
        1
    } else {
        threads()
    };
    let mut order: Vec<usize> = (0..jobs.len()).collect();
    // Descending cost; submission order breaks ties (total order — cost
    // estimates are plain finite numbers).
    order.sort_by(|&a, &b| jobs[b].0.total_cmp(&jobs[a].0).then(a.cmp(&b)));
    dispatch(workers, jobs.into_iter().map(|(_, j)| j).collect(), order)
}

/// [`run_jobs`] with an explicit worker count. `threads <= 1` (or a
/// single job) degrades to a plain serial loop on the calling thread.
pub fn run_jobs_on<T, F>(threads: usize, jobs: Vec<F>) -> Vec<T>
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    let order: Vec<usize> = (0..jobs.len()).collect();
    dispatch(threads, jobs, order)
}

/// Shared fan-out core: ticket `t` claims job `order[t]`; results land in
/// slot `order[t]`, so the returned Vec is in submission order whatever
/// the claim order.
fn dispatch<T, F>(threads: usize, jobs: Vec<F>, order: Vec<usize>) -> Vec<T>
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    if threads <= 1 || jobs.len() <= 1 {
        return jobs.into_iter().map(|job| job()).collect();
    }
    let next = AtomicUsize::new(0);
    // Each job is claimed exactly once (by the atomic ticket) and each
    // slot written exactly once; the mutexes only satisfy `Sync`.
    let jobs: Vec<Mutex<Option<F>>> = jobs.into_iter().map(|j| Mutex::new(Some(j))).collect();
    let slots: Vec<Mutex<Option<T>>> = jobs.iter().map(|_| Mutex::new(None)).collect();
    let order = &order;
    std::thread::scope(|scope| {
        for _ in 0..threads.min(jobs.len()) {
            scope.spawn(|| loop {
                let t = next.fetch_add(1, Ordering::Relaxed);
                if t >= jobs.len() {
                    break;
                }
                let i = order[t];
                let Some(job) = jobs[i].lock().ok().and_then(|mut j| j.take()) else {
                    // ofc-lint: allow(panic) reason=a claimed ticket is handed out once; a missing job means runner-internal corruption
                    unreachable!("job {i} claimed twice");
                };
                let out = job();
                if let Ok(mut slot) = slots[i].lock() {
                    *slot = Some(out);
                }
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            let out = slot.into_inner().ok().flatten();
            // ofc-lint: allow(panic) reason=the scope joins every worker, so each slot was filled (a worker panic propagates before this point)
            out.expect("worker filled every result slot")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_submission_order() {
        let jobs: Vec<_> = (0..32).map(|i| move || i * 10).collect();
        let out = run_jobs_on(4, jobs);
        assert_eq!(out, (0..32).map(|i| i * 10).collect::<Vec<_>>());
    }

    #[test]
    fn serial_path_matches_parallel_path() {
        let mk = || (0..17).map(|i| move || format!("r{i}")).collect::<Vec<_>>();
        assert_eq!(run_jobs_on(1, mk()), run_jobs_on(8, mk()));
    }

    #[test]
    fn more_workers_than_jobs_is_fine() {
        assert_eq!(run_jobs_on(16, vec![|| 1, || 2]), vec![1, 2]);
    }

    #[test]
    fn empty_job_list_yields_empty_results() {
        let out: Vec<u64> = run_jobs_on(4, Vec::<fn() -> u64>::new());
        assert!(out.is_empty());
    }

    #[test]
    fn small_bins_fall_back_to_serial() {
        // Below the threshold run_jobs picks 1 worker; the result must
        // still match a forced-parallel run of the same jobs.
        let mk = |n: usize| (0..n).map(|i| move || i * 3).collect::<Vec<_>>();
        let small = DEFAULT_MIN_PAR_SIMS - 1;
        assert_eq!(run_jobs(mk(small)), run_jobs_on(8, mk(small)));
        assert_eq!(
            run_jobs(mk(DEFAULT_MIN_PAR_SIMS + 2)).len(),
            DEFAULT_MIN_PAR_SIMS + 2
        );
    }

    #[test]
    fn costed_claiming_preserves_submission_order() {
        // Costs deliberately ascending: claim order is reversed, results
        // must still come back in submission order.
        let jobs: Vec<(f64, _)> = (0..23).map(|i| (i as f64, move || i * 7)).collect();
        let out = run_jobs_costed(jobs);
        assert_eq!(out, (0..23).map(|i| i * 7).collect::<Vec<_>>());
    }

    #[test]
    fn costed_and_plain_runners_agree() {
        let mk = || {
            (0..9)
                .map(|i| ((9 - i) as f64, move || format!("j{i}")))
                .collect::<Vec<_>>()
        };
        let plain: Vec<String> = run_jobs_on(4, mk().into_iter().map(|(_, j)| j).collect());
        assert_eq!(run_jobs_costed(mk()), plain);
    }

    #[test]
    fn boxed_heterogeneous_closures_run() {
        let a = 7u64;
        let jobs: Vec<Box<dyn FnOnce() -> u64 + Send>> = vec![Box::new(move || a), Box::new(|| 35)];
        assert_eq!(run_jobs_on(2, jobs).iter().sum::<u64>(), 42);
    }
}
