//! Testbed assembly: builds the §7 configurations — `OWK-Swift`,
//! `OWK-Redis`, and OFC — over the simulated six-machine cluster.

use ofc_core::ofc::{Ofc, OfcConfig};
use ofc_core::scheduler::FeatureFn;
use ofc_faas::baselines::{DirectPlane, ImocPlane};
use ofc_faas::platform::{Platform, PlatformHandle};
use ofc_faas::registry::{FunctionSpec, Registry};
use ofc_faas::{
    Admission, FunctionId, PlatformConfig, RoutingContext, RoutingDecision, Scheduler, TenantId,
};
use ofc_objstore::imoc::Imoc;
use ofc_objstore::latency::LatencyModel;
use ofc_objstore::store::ObjectStore;
use ofc_simtime::Sim;
use ofc_workloads::catalog::Catalog;
use ofc_workloads::datasets::invocation_stream;
use ofc_workloads::multimedia::{MultimediaModel, Profile};
use ofc_workloads::pipelines::{stage_profile, StageModel, STAGE_PROFILES};
use std::cell::RefCell;
use std::rc::Rc;
use std::time::Duration;

/// The data-plane configuration under test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlaneKind {
    /// `OWK-Swift`: all data in the RSDS (worst case).
    Swift,
    /// `OWK-Redis`: all data in a tenant-provisioned IMOC (best case).
    Redis,
    /// OFC: the opportunistic cache.
    Ofc,
}

/// An assembled testbed.
pub struct Testbed {
    /// The simulator.
    pub sim: Sim,
    /// The FaaS platform.
    pub platform: PlatformHandle,
    /// The RSDS.
    pub store: Rc<RefCell<ObjectStore>>,
    /// The workload catalog.
    pub catalog: Catalog,
    /// OFC handles (present for [`PlaneKind::Ofc`]).
    pub ofc: Option<Ofc>,
    /// The IMOC (present for [`PlaneKind::Redis`]).
    pub imoc: Option<Rc<RefCell<Imoc>>>,
}

/// The paper's testbed: 6 machines — 1 controller, 1 storage, 4 workers.
pub const WORKER_NODES: usize = 4;

/// Builds a testbed with `nodes` workers and default OFC configuration.
pub fn testbed(kind: PlaneKind, nodes: usize, seed: u64) -> Testbed {
    testbed_with(kind, nodes, seed, OfcConfig::default())
}

/// Builds a testbed with an explicit OFC configuration (ablations).
pub fn testbed_with(kind: PlaneKind, nodes: usize, seed: u64, ofc_cfg: OfcConfig) -> Testbed {
    // The paper's workers are 512 GB machines; 32 GB of invoker capacity
    // per node absorbs naive 2 GB bookings without admission failures
    // (the paper reports zero failed invocations).
    testbed_full(kind, nodes, 64 << 30, seed, ofc_cfg)
}

/// Builds a testbed with explicit per-node memory (contention studies).
pub fn testbed_full(
    kind: PlaneKind,
    nodes: usize,
    node_mem: u64,
    seed: u64,
    ofc_cfg: OfcConfig,
) -> Testbed {
    let catalog = Catalog::new();
    let store = Rc::new(RefCell::new(ObjectStore::new(LatencyModel::swift())));
    let cfg = PlatformConfig {
        nodes,
        node_mem,
        ..PlatformConfig::default()
    };
    match kind {
        PlaneKind::Swift => {
            let platform = Platform::build(
                cfg,
                Registry::new(),
                Box::new(DirectPlane::new(Rc::clone(&store))),
            );
            Testbed {
                sim: Sim::new(seed),
                platform,
                store,
                catalog,
                ofc: None,
                imoc: None,
            }
        }
        PlaneKind::Redis => {
            let imoc = Rc::new(RefCell::new(Imoc::redis(64 << 30)));
            let platform = Platform::build(
                cfg,
                Registry::new(),
                Box::new(ImocPlane::new(Rc::clone(&imoc), Rc::clone(&store))),
            );
            Testbed {
                sim: Sim::new(seed),
                platform,
                store,
                catalog,
                ofc: None,
                imoc: Some(imoc),
            }
        }
        PlaneKind::Ofc => {
            let platform = Platform::build(
                cfg,
                Registry::new(),
                Box::new(ofc_faas::baselines::NoopPlane),
            );
            let features = feature_fn(catalog.clone());
            let ofc = Ofc::builder(&platform)
                .store(Rc::clone(&store))
                .features(features)
                .config(ofc_cfg)
                .build();
            let mut tb = Testbed {
                sim: Sim::new(seed),
                platform,
                store,
                catalog,
                ofc: Some(ofc),
                imoc: None,
            };
            if let Some(ofc) = &tb.ofc {
                ofc.start(&mut tb.sim);
            }
            tb
        }
    }
}

/// The feature extractor used by OFC's Predictor: resolves single-stage
/// profiles and pipeline stage profiles by function name, reading metadata
/// through the catalog (which mirrors the RSDS feature tags, §5.1.2).
pub fn feature_fn(catalog: Catalog) -> FeatureFn {
    Rc::new(move |_tenant, function, args| {
        let name: &str = function.as_ref();
        if let Some(p) = ofc_workloads::multimedia::profile(name) {
            let input = args.values().find_map(|v| match v {
                ofc_faas::ArgValue::Obj(id) => Some(*id),
                _ => None,
            })?;
            let meta = catalog.get(&input)?;
            return Some(p.features(&meta, args));
        }
        stage_profile(name).map(|sp| sp.features(args, &catalog))
    })
}

/// Registers a single-stage function for `tenant`.
pub fn register_single(tb: &Testbed, tenant: &TenantId, profile: &'static Profile, booked: u64) {
    tb.platform.register(FunctionSpec {
        id: FunctionId::from(profile.name),
        tenant: *tenant,
        booked_mem: booked,
        model: Rc::new(MultimediaModel::new(profile, tb.catalog.clone())),
    });
    if let Some(ofc) = &tb.ofc {
        ofc.register_function(tenant.as_ref(), profile.name, profile.feature_schema());
    }
}

/// Registers every pipeline stage function for `tenant`.
pub fn register_stages(tb: &Testbed, tenant: &TenantId, booked: u64) {
    for sp in &STAGE_PROFILES {
        tb.platform.register(FunctionSpec {
            id: FunctionId::from(sp.name),
            tenant: *tenant,
            booked_mem: booked,
            model: Rc::new(StageModel::new(sp, tb.catalog.clone())),
        });
        if let Some(ofc) = &tb.ofc {
            ofc.register_function(tenant.as_ref(), sp.name, sp.feature_schema());
        }
    }
}

/// Pre-trains a single-stage function's models to maturity, simulating the
/// invocation history a production function accumulates (§7.1.3: most
/// functions mature within 100–450 invocations).
pub fn pretrain_single(tb: &Testbed, tenant: &TenantId, profile: &'static Profile, n: usize) {
    let Some(ofc) = &tb.ofc else {
        return;
    };
    let key = (*tenant, FunctionId::from(profile.name));
    let mut ml = ofc.ml.borrow_mut();
    for s in invocation_stream(profile, n, 0xC0FFEE) {
        ml.observe(
            &key,
            ofc_core::ml::Observation {
                features: s.features,
                actual_mem: s.mem_bytes,
                el_ratio: if s.cache_benefit { 0.9 } else { 0.1 },
            },
        );
    }
}

/// A scheduler that spreads invocations over the cluster (warm-first, then
/// the roomiest node) with a fixed memory limit — used by the pipeline
/// micro-benchmarks, whose fan-outs exceed one node.
#[derive(Debug, Clone, Copy)]
pub struct SpreadScheduler {
    /// Memory limit applied.
    pub mem_limit: u64,
    /// Admission decision passed to the data plane.
    pub admission: Admission,
}

impl Scheduler for SpreadScheduler {
    fn route(&mut self, ctx: &RoutingContext) -> RoutingDecision {
        if let Some(sb) = ctx.warm.iter().max_by_key(|s| s.idle_since) {
            return RoutingDecision {
                node: sb.node,
                sandbox: Some(sb.sandbox),
                mem_limit: self.mem_limit,
                admission: self.admission,
                overhead: Duration::from_millis(6),
            };
        }
        let node = ctx
            .nodes
            .iter()
            .max_by_key(|n| {
                (
                    n.total_mem.saturating_sub(n.committed_mem),
                    usize::MAX - n.node,
                )
            })
            .map(|n| n.node)
            .unwrap_or(ctx.home);
        RoutingDecision {
            node,
            sandbox: None,
            mem_limit: self.mem_limit,
            admission: self.admission,
            overhead: Duration::from_millis(6),
        }
    }
}

/// A micro-benchmark scheduler that pins every invocation to one node with
/// a fixed memory limit (used by the Figure 7 scenario isolation).
#[derive(Debug, Clone, Copy)]
pub struct PinnedScheduler {
    /// Target node.
    pub node: usize,
    /// Memory limit applied.
    pub mem_limit: u64,
    /// Admission decision passed to the data plane.
    pub admission: Admission,
}

impl Scheduler for PinnedScheduler {
    fn route(&mut self, ctx: &RoutingContext) -> RoutingDecision {
        let warm = ctx
            .warm
            .iter()
            .find(|s| s.node == self.node)
            .map(|s| s.sandbox);
        RoutingDecision {
            node: self.node,
            sandbox: warm,
            mem_limit: self.mem_limit,
            admission: self.admission,
            overhead: Duration::from_millis(6),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ofc_faas::{ArgValue, Args, InvocationRequest};
    use ofc_simtime::SimTime;
    use ofc_workloads::catalog::gen_image_with_bytes;
    use rand::SeedableRng;

    fn submit_one(tb: &mut Testbed, tenant: &TenantId, profile: &'static Profile) {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
        let meta = gen_image_with_bytes(64 << 10, &mut rng);
        let id = ofc_objstore::ObjectId::new("in", "img");
        tb.store.borrow_mut().put(
            &id,
            ofc_objstore::Payload::Synthetic(meta.bytes),
            meta.tags(),
            false,
        );
        tb.catalog.insert(id, meta);
        let mut args = Args::new();
        args.insert("input".into(), ArgValue::Obj(id));
        if let Some(spec) = profile.arg {
            args.insert(spec.name.into(), ArgValue::Num((spec.lo + spec.hi) / 2.0));
        }
        tb.platform.submit(
            &mut tb.sim,
            InvocationRequest {
                function: FunctionId::from(profile.name),
                tenant: *tenant,
                args,
                seed: 7,
                pipeline: None,
            },
        );
    }

    #[test]
    fn all_three_planes_execute_a_function() {
        let profile = ofc_workloads::multimedia::profile("wand_edge").unwrap();
        let tenant = TenantId::from("t");
        let mut totals = Vec::new();
        for kind in [PlaneKind::Swift, PlaneKind::Redis, PlaneKind::Ofc] {
            let mut tb = testbed(kind, WORKER_NODES, 0);
            register_single(&tb, &tenant, profile, 512 << 20);
            submit_one(&mut tb, &tenant, profile);
            tb.sim.run_until(SimTime::from_secs(30));
            let recs = tb.platform.drain_records();
            assert_eq!(recs.len(), 1, "{kind:?}");
            assert_eq!(recs[0].completion, ofc_faas::Completion::Success);
            totals.push((kind, recs[0].etl()));
        }
        // Swift is the slowest configuration for this E&L-dominated
        // function; Redis the fastest.
        let swift = totals[0].1;
        let redis = totals[1].1;
        let ofc = totals[2].1;
        assert!(swift > redis, "swift {swift:?} !> redis {redis:?}");
        // OFC's first access misses but still beats Swift (write-back L).
        assert!(ofc < swift, "ofc {ofc:?} !< swift {swift:?}");
    }

    #[test]
    fn pretraining_matures_models() {
        let profile = ofc_workloads::multimedia::profile("wand_resize").unwrap();
        let tenant = TenantId::from("t");
        let tb = testbed(PlaneKind::Ofc, WORKER_NODES, 0);
        register_single(&tb, &tenant, profile, 2 << 30);
        pretrain_single(&tb, &tenant, profile, 1500);
        let ofc = tb.ofc.as_ref().unwrap();
        let key = (tenant, FunctionId::from(profile.name));
        assert!(
            ofc.ml.borrow().is_mature(&key),
            "pretraining must mature the model"
        );
    }
}
