//! The `macro_mega` scenario runner (ROADMAP item 1, DESIGN.md §18):
//! drives [`ofc_workloads::mega`] against a full OFC testbed and folds
//! the stream of invocation records into per-tenant-decile figures
//! without ever holding the whole trace.
//!
//! Records are drained from the platform on a periodic in-sim tick and
//! folded into integer histograms, so live memory stays O(deciles), not
//! O(invocations) — the same streaming discipline as the generator. All
//! report fields are integers or ratios of integers: the JSON is
//! byte-identical across thread counts and is safe for the golden
//! serial-vs-parallel compare.

use crate::scenario::WORKER_NODES;
use ofc_core::ofc::{Ofc, OfcConfig};
use ofc_core::scheduler::FeatureFn;
use ofc_faas::platform::Platform;
use ofc_faas::registry::Registry;
use ofc_faas::{Completion, PlatformConfig, Served};
use ofc_objstore::latency::LatencyModel;
use ofc_objstore::store::ObjectStore;
use ofc_simtime::{Sim, SimTime};
use ofc_workloads::catalog::Catalog;
use ofc_workloads::mega::{self, MegaConfig, MegaLoad};
use serde::Serialize;
use std::cell::RefCell;
use std::rc::Rc;
use std::time::Duration;

/// Latency histogram: quarter-octave log buckets of microseconds (4
/// sub-buckets per power of two, ≤ 19 % relative error at the top of a
/// bucket). Integer-only, so percentile extraction is deterministic
/// across platforms and thread counts.
const LAT_BUCKETS: usize = 256;

#[derive(Clone)]
struct LatHist {
    buckets: [u64; LAT_BUCKETS],
    count: u64,
}

impl Default for LatHist {
    fn default() -> Self {
        LatHist {
            buckets: [0; LAT_BUCKETS],
            count: 0,
        }
    }
}

impl LatHist {
    fn index(us: u64) -> usize {
        let us = us.max(4);
        let exp = 63 - us.leading_zeros() as u64;
        let sub = (us >> (exp - 2)) & 0b11;
        ((exp * 4 + sub) as usize).min(LAT_BUCKETS - 1)
    }

    /// Upper bound of bucket `b` in microseconds.
    fn upper_us(b: usize) -> u64 {
        let (exp, sub) = ((b / 4) as u64, (b % 4) as u64);
        (1u64 << exp) / 4 * (sub + 5)
    }

    fn observe(&mut self, d: Duration) {
        self.buckets[Self::index(d.as_micros() as u64)] += 1;
        self.count += 1;
    }

    /// Upper bound (ms) of the bucket holding the 99th percentile.
    fn p99_ms(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let target = (self.count * 99).div_ceil(100);
        let mut cum = 0u64;
        for (b, &c) in self.buckets.iter().enumerate() {
            cum += c;
            if cum >= target {
                return Self::upper_us(b) as f64 / 1000.0;
            }
        }
        0.0
    }
}

/// Streaming per-decile accumulator, folded on every drain tick.
#[derive(Default)]
struct Agg {
    invocations: [u64; 10],
    hits: [u64; 10],
    misses: [u64; 10],
    lat: [LatHist; 10],
    completed: u64,
    failed: u64,
}

impl Agg {
    fn fold(&mut self, records: Vec<ofc_faas::InvocationRecord>, tenants: usize, max_retries: u32) {
        for r in records {
            let name = r.tenant.as_str();
            let idx: usize = name[1..].parse().unwrap_or(0);
            let d = mega::decile_of(idx, tenants);
            self.invocations[d] += 1;
            match r.completion {
                Completion::Success => {
                    self.completed += 1;
                    self.lat[d].observe(r.total());
                }
                Completion::Unschedulable => self.failed += 1,
                Completion::OomKilled if r.attempt >= max_retries => self.failed += 1,
                _ => {}
            }
            for s in &r.reads_served {
                match s {
                    Served::LocalHit | Served::RemoteHit => self.hits[d] += 1,
                    Served::Miss => self.misses[d] += 1,
                    Served::Direct => {}
                }
            }
        }
    }
}

/// One tenant decile of the mega figure (0 = hottest 10 % of tenants).
#[derive(Debug, Clone, Serialize)]
pub struct DecileRow {
    /// Decile index by popularity rank.
    pub decile: usize,
    /// Invocations attributed to the decile.
    pub invocations: u64,
    /// Cache hits (local + remote) on its reads.
    pub hits: u64,
    /// Cache misses on its reads.
    pub misses: u64,
    /// Hit ratio (%).
    pub hit_ratio_pct: f64,
    /// 99th-percentile end-to-end latency (ms, log-bucket upper bound).
    pub p99_ms: f64,
}

/// The full mega-run report (one variant).
#[derive(Debug, Clone, Serialize)]
pub struct MegaReport {
    /// Variant label.
    pub label: String,
    /// Tenants installed.
    pub tenants: usize,
    /// Functions registered.
    pub functions: usize,
    /// Invocations submitted by the streams.
    pub arrivals: u64,
    /// Invocations completing successfully.
    pub completed: u64,
    /// Invocations permanently failed.
    pub failed: u64,
    /// Simulator events executed (the events/sec numerator; wall time
    /// stays out of the JSON so goldens stay byte-stable).
    pub events: u64,
    /// Overall cache hit ratio (%).
    pub hit_ratio_pct: f64,
    /// Per-tenant-decile figures (hit ratio + p99) — the mega figure.
    pub deciles: Vec<DecileRow>,
    /// ML retrains over the window (the `retrain_every` cost driver).
    pub ml_retrains: u64,
    /// Over-quota admissions that won slack memory.
    pub quota_overshoots: u64,
    /// Own-tenant evictions forced by quota contention.
    pub quota_evictions: u64,
    /// Admissions denied to the RSDS by the quota gate.
    pub quota_bypasses: u64,
    /// Last sampled Jain fairness index of the over-quota slack split
    /// (bps; 10000 when quotas are off or nobody overshoots).
    pub quota_fairness_bps: u64,
    /// Jain fairness index over raw per-tenant cached bytes at the end of
    /// the window (bps) — who actually holds the pool. Comparable across
    /// quota-on and quota-off runs.
    pub usage_fairness_bps: u64,
    /// Raft commits (replicated-coordinator variants; 0 otherwise).
    pub raft_commits: u64,
    /// Raft elections observed.
    pub raft_elections: u64,
    /// Reads/writes that bypassed to the RSDS on open breakers.
    pub degraded_bypasses: u64,
    /// Write-backs still pending at the end (durability check).
    pub persist_pending: u64,
    /// Write-backs dead-lettered (durability check).
    pub persist_dead_letters: u64,
}

/// Options of one mega run.
pub struct MegaOpts {
    /// Variant label in the report.
    pub label: String,
    /// Generator configuration.
    pub mega: MegaConfig,
    /// OFC configuration (quota plane, policy, coordinator replicas…).
    pub ofc: OfcConfig,
    /// Worker nodes.
    pub nodes: usize,
    /// Memory per worker node.
    pub node_mem: u64,
    /// Crash worker 1 mid-window and restart it 60 s later (the failover
    /// drill at mega scale).
    pub crash_drill: bool,
}

impl MegaOpts {
    /// Baseline options over a generator config.
    pub fn new(label: impl Into<String>, mega: MegaConfig) -> Self {
        MegaOpts {
            label: label.into(),
            mega,
            ofc: OfcConfig::default(),
            nodes: WORKER_NODES,
            node_mem: 64 << 30,
            crash_drill: false,
        }
    }

    /// The full-scale headline run (≥100k functions, ≥1k tenants): 64 MB
    /// per-tenant quotas on a 24-worker cluster — a million-user platform
    /// does not fit the paper's 4 workers. Shared by the `macro_mega` bin
    /// and perfrec's events/sec measurement so the two agree.
    pub fn headline() -> Self {
        let mut o = MegaOpts::new("headline", MegaConfig::default());
        o.ofc.plane.tenant_quota_bytes = Some(64 << 20);
        o.nodes = 24;
        o
    }
}

/// Hit ratio (%) of the tail deciles (5..9) — the victims of a noisy
/// head tenant, and the protection target of the quota plane.
pub fn tail_hit_pct(r: &MegaReport) -> f64 {
    let (h, m) = r.deciles[5..]
        .iter()
        .fold((0u64, 0u64), |(h, m), d| (h + d.hits, m + d.misses));
    if h + m == 0 {
        0.0
    } else {
        100.0 * h as f64 / (h + m) as f64
    }
}

/// Feature extractor for mega function names: strips the variant suffix
/// and resolves the profile, mirroring `scenario::feature_fn`.
pub fn mega_feature_fn(catalog: Catalog) -> FeatureFn {
    Rc::new(move |_tenant, function, args| {
        let p = mega::profile_of_function(function.as_ref())?;
        let input = args.values().find_map(|v| match v {
            ofc_faas::ArgValue::Obj(id) => Some(*id),
            _ => None,
        })?;
        let meta = catalog.get(&input)?;
        Some(p.features(&meta, args))
    })
}

/// Recurring record drain: folds completed invocations into the decile
/// accumulator every `every`, keeping live record memory bounded.
fn start_drain_tick(
    sim: &mut Sim,
    every: Duration,
    platform: ofc_faas::platform::PlatformHandle,
    agg: Rc<RefCell<Agg>>,
    tenants: usize,
    max_retries: u32,
) {
    sim.schedule_in(every, move |sim| {
        agg.borrow_mut()
            .fold(platform.drain_records(), tenants, max_retries);
        start_drain_tick(sim, every, platform, agg, tenants, max_retries);
    });
}

/// Runs one mega variant end to end and reports the figures.
pub fn run_mega(opts: MegaOpts) -> MegaReport {
    let MegaOpts {
        label,
        mega: mega_cfg,
        ofc: ofc_cfg,
        nodes,
        node_mem,
        crash_drill,
    } = opts;
    let catalog = Catalog::new();
    let store = Rc::new(RefCell::new(ObjectStore::new(LatencyModel::swift())));
    let platform = Platform::build(
        PlatformConfig {
            nodes,
            node_mem,
            ..PlatformConfig::default()
        },
        Registry::new(),
        Box::new(ofc_faas::baselines::NoopPlane),
    );
    let ofc = Ofc::builder(&platform)
        .store(Rc::clone(&store))
        .features(mega_feature_fn(catalog.clone()))
        .config(ofc_cfg)
        .build();
    let mut sim = Sim::new(mega_cfg.seed);
    ofc.start(&mut sim);

    let load = MegaLoad::new(mega_cfg.clone());
    let prepared = load.install(&mut sim, &platform, &store, &catalog);

    // Register every (tenant, function) schema; models start blank and
    // mature (or not) from live traffic — the heavy tail is the story, so
    // there is no pretraining.
    {
        let schemas: Vec<_> = (0..mega_cfg.fns_per_tenant)
            .map(|k| {
                let p = mega::profile_of_function(&mega::fn_name(k)).expect("mega profile");
                (mega::fn_name(k), p.feature_schema())
            })
            .collect();
        for t in 0..mega_cfg.tenants {
            let tenant = mega::tenant_name(t);
            for (name, schema) in &schemas {
                ofc.register_function(&tenant, name, schema.clone());
            }
        }
    }

    let max_retries = platform.config().max_retries;
    let agg = Rc::new(RefCell::new(Agg::default()));
    start_drain_tick(
        &mut sim,
        Duration::from_secs(60),
        platform.clone(),
        Rc::clone(&agg),
        mega_cfg.tenants,
        max_retries,
    );

    if crash_drill {
        // Failover drill: lose a worker mid-window, recover a minute
        // later. Recovery promotes backups; the control-plane counters
        // record what the drill cost.
        let mid = mega_cfg.duration / 2;
        let cluster = Rc::clone(&ofc.cluster);
        sim.schedule_at(SimTime::ZERO + mid, move |sim| {
            let now = sim.now();
            let mut c = cluster.borrow_mut();
            if c.live_nodes() > 1 {
                let _ = c.crash_node(1, now);
            }
        });
        let cluster = Rc::clone(&ofc.cluster);
        sim.schedule_at(SimTime::ZERO + mid + Duration::from_secs(60), move |sim| {
            cluster.borrow_mut().restart_node(1, sim.now());
        });
    }

    sim.run_until(SimTime::ZERO + mega_cfg.duration + Duration::from_secs(600));
    agg.borrow_mut()
        .fold(platform.drain_records(), mega_cfg.tenants, max_retries);

    let m = ofc.metrics();
    let usage_fairness_bps = {
        let usage = ofc.cluster.borrow().owner_usage();
        let shares: Vec<u64> = usage.values().copied().collect();
        ofc_core::fairness::jain_index_bps(&shares)
    };
    let persist_pending = ofc.persistence.borrow().pending_count() as u64;
    let persist_dead_letters = ofc.persistence.borrow().dead_letter_count() as u64;
    let agg = agg.borrow();
    let deciles: Vec<DecileRow> = (0..10)
        .map(|d| {
            let (h, mi) = (agg.hits[d], agg.misses[d]);
            DecileRow {
                decile: d,
                invocations: agg.invocations[d],
                hits: h,
                misses: mi,
                hit_ratio_pct: if h + mi == 0 {
                    0.0
                } else {
                    100.0 * h as f64 / (h + mi) as f64
                },
                p99_ms: agg.lat[d].p99_ms(),
            }
        })
        .collect();

    MegaReport {
        label,
        tenants: prepared.tenants,
        functions: prepared.functions,
        arrivals: prepared.arrivals.get(),
        completed: agg.completed,
        failed: agg.failed,
        events: sim.events_executed(),
        hit_ratio_pct: 100.0 * ofc_core::cache::plane_hit_ratio(&m),
        deciles,
        ml_retrains: m.counter("ml.retrains"),
        quota_overshoots: m.counter("plane.quota_overshoots"),
        quota_evictions: m.counter("plane.quota_evictions"),
        quota_bypasses: m.counter("plane.quota_bypasses"),
        quota_fairness_bps: m.gauge("plane.quota_fairness_bps").unwrap_or(10_000.0) as u64,
        usage_fairness_bps,
        raft_commits: m.counter("raft.commits"),
        raft_elections: m.counter("raft.elections"),
        degraded_bypasses: m.counter("plane.degraded_bypasses"),
        persist_pending,
        persist_dead_letters,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lat_hist_p99_lands_in_the_right_bucket() {
        let mut h = LatHist::default();
        for _ in 0..99 {
            h.observe(Duration::from_micros(100)); // bucket 6 (64..128 µs)
        }
        h.observe(Duration::from_millis(500));
        // p99 target = 99th of 100 → still the 100 µs bucket's bound.
        assert!(h.p99_ms() < 0.2, "p99 {} ms", h.p99_ms());
        h.observe(Duration::from_millis(500));
        h.observe(Duration::from_millis(500));
        // 3 of 102 above: p99 moves into the 500 ms bucket.
        assert!(h.p99_ms() > 400.0, "p99 {} ms", h.p99_ms());
    }

    #[test]
    fn smoke_run_produces_decile_figures() {
        let mut cfg = MegaConfig::smoke();
        cfg.tenants = 20;
        cfg.fns_per_tenant = 12;
        cfg.duration = Duration::from_secs(120);
        let report = run_mega(MegaOpts::new("test", cfg));
        assert_eq!(report.tenants, 20);
        assert_eq!(report.functions, 240);
        assert!(report.arrivals > 50, "arrivals {}", report.arrivals);
        assert!(report.completed > 0);
        assert_eq!(report.deciles.len(), 10);
        assert!(report.events > report.arrivals);
        // Head decile sees more traffic than the tail decile.
        assert!(report.deciles[0].invocations > report.deciles[9].invocations);
    }

    #[test]
    fn smoke_run_is_deterministic() {
        let cfg = MegaConfig {
            tenants: 16,
            fns_per_tenant: 10,
            duration: Duration::from_secs(90),
            ..MegaConfig::smoke()
        };
        let a = run_mega(MegaOpts::new("det", cfg.clone()));
        let b = run_mega(MegaOpts::new("det", cfg));
        assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap()
        );
    }
}
