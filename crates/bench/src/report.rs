//! Experiment output: aligned text tables on stdout plus JSON files under
//! `results/` for `EXPERIMENTS.md`.

use serde::Serialize;
use std::fmt::Write as _;
use std::path::PathBuf;

/// Renders rows of equal-length cells as an aligned table.
pub fn table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let mut line = String::new();
    for (h, w) in headers.iter().zip(&widths) {
        let _ = write!(line, "{h:<w$}  ");
    }
    out.push_str(line.trim_end());
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
    out.push('\n');
    for row in rows {
        let mut line = String::new();
        for (cell, w) in row.iter().zip(&widths) {
            let _ = write!(line, "{cell:<w$}  ");
        }
        out.push_str(line.trim_end());
        out.push('\n');
    }
    out
}

/// Directory where experiment JSON lands (created on demand).
pub fn results_dir() -> PathBuf {
    let dir = std::env::var("OFC_RESULTS_DIR").unwrap_or_else(|_| "results".into());
    let path = PathBuf::from(dir);
    std::fs::create_dir_all(&path).expect("creating the results directory");
    path
}

/// Serializes one experiment's result as `results/<id>.json`.
pub fn save_json<T: Serialize>(id: &str, value: &T) {
    let path = results_dir().join(format!("{id}.json"));
    let json = serde_json::to_string_pretty(value).expect("serializable result");
    std::fs::write(&path, json).unwrap_or_else(|e| panic!("writing {}: {e}", path.display()));
    eprintln!("[saved {}]", path.display());
}

/// Formats seconds with adaptive precision.
pub fn fmt_secs(s: f64) -> String {
    if s >= 10.0 {
        format!("{s:.1}s")
    } else if s >= 0.1 {
        format!("{s:.2}s")
    } else {
        format!("{:.1}ms", s * 1e3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let t = table(
            &["name", "value"],
            &[
                vec!["a".into(), "1".into()],
                vec!["long-name".into(), "22".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert!(lines[0].starts_with("name"));
        assert!(lines[2].starts_with("a"));
        assert!(lines[3].starts_with("long-name"));
        // The value column starts at the same offset in every row.
        let col = lines[3].find("22").unwrap();
        assert_eq!(lines[2].find('1').unwrap(), col);
    }

    #[test]
    fn fmt_secs_scales() {
        assert_eq!(fmt_secs(12.34), "12.3s");
        assert_eq!(fmt_secs(0.5), "0.50s");
        assert_eq!(fmt_secs(0.032), "32.0ms");
    }
}
