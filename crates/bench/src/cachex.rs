//! Cache experiments (§7.2): Figures 3, 7, 8, 9, 10, Table 2, the §7.2.1
//! migration sweep, and the 24-tenant variant.

use crate::scenario::{
    feature_fn, pretrain_single, register_single, register_stages, testbed, testbed_full,
    PinnedScheduler, PlaneKind, SpreadScheduler, Testbed, WORKER_NODES,
};
use ofc_core::cache::rc_key;
use ofc_core::ofc::OfcConfig;
use ofc_faas::{ArgValue, Args, Completion, FunctionId, InvocationRequest, ObjectRef, TenantId};
use ofc_objstore::{ObjectId, Payload};
use ofc_rcstore::Value as RcValue;
use ofc_simtime::SimTime;
use ofc_workloads::catalog::{gen_image_with_bytes, gen_text, gen_video, MediaMeta};
use ofc_workloads::faasload::{FaasLoad, FaasLoadConfig, TenantProfile};
use ofc_workloads::multimedia::profile;
use ofc_workloads::pipelines::{ScatterGather, Sequence};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::Serialize;
use std::collections::BTreeMap;
use std::rc::Rc;
use std::time::Duration;

/// The data-placement scenario of a Figure 7 run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scenario {
    /// `OWK-Swift` baseline.
    Swift,
    /// `OWK-Redis` baseline (data pre-loaded into the IMOC).
    Redis,
    /// OFC with the input cached on the executing node.
    LocalHit,
    /// OFC with a cold cache.
    Miss,
    /// OFC with the input cached on a *different* node.
    RemoteHit,
}

impl Scenario {
    /// All five scenarios, in the paper's presentation order.
    pub const ALL: [Scenario; 5] = [
        Scenario::Swift,
        Scenario::Redis,
        Scenario::LocalHit,
        Scenario::Miss,
        Scenario::RemoteHit,
    ];

    /// Short label used in figures.
    pub fn label(self) -> &'static str {
        match self {
            Scenario::Swift => "Swift",
            Scenario::Redis => "Redis",
            Scenario::LocalHit => "LH",
            Scenario::Miss => "M",
            Scenario::RemoteHit => "RH",
        }
    }

    fn plane(self) -> PlaneKind {
        match self {
            Scenario::Swift => PlaneKind::Swift,
            Scenario::Redis => PlaneKind::Redis,
            _ => PlaneKind::Ofc,
        }
    }
}

/// E/T/L phase breakdown of one run (seconds).
#[derive(Debug, Clone, Copy, Default, Serialize)]
pub struct Phases {
    /// Extract time.
    pub e: f64,
    /// Transform time.
    pub t: f64,
    /// Load time.
    pub l: f64,
}

impl Phases {
    /// Total E+T+L.
    pub fn total(&self) -> f64 {
        self.e + self.t + self.l
    }

    fn from_records(records: &[ofc_faas::InvocationRecord]) -> Phases {
        let mut p = Phases::default();
        for r in records {
            p.e += r.e_time.as_secs_f64();
            p.t += r.t_time.as_secs_f64();
            p.l += r.l_time.as_secs_f64();
        }
        p
    }
}

const EXEC_NODE: usize = 0;
const REMOTE_NODE: usize = 1;

/// Stages an input object in the RSDS (+ catalog), and in the cache/IMOC
/// according to the scenario.
pub fn stage_input(tb: &mut Testbed, scenario: Scenario, meta: MediaMeta, key: &str) -> ObjectRef {
    let id = ObjectId::new("inputs", key);
    tb.store
        .borrow_mut()
        .put(&id, Payload::Synthetic(meta.bytes), meta.tags(), false);
    let size = meta.bytes;
    tb.catalog.insert(id, meta);
    match scenario {
        Scenario::Redis => {
            let imoc = tb.imoc.as_ref().expect("redis testbed");
            imoc.borrow_mut()
                .put(&id, Payload::Synthetic(size))
                .0
                .expect("imoc preload");
        }
        Scenario::LocalHit | Scenario::RemoteHit => {
            let node = if scenario == Scenario::LocalHit {
                EXEC_NODE
            } else {
                REMOTE_NODE
            };
            let ofc = tb.ofc.as_ref().expect("ofc testbed");
            let max = ofc.cluster.borrow().config().max_object_bytes;
            // Objects above the cache's 10 MB limit are never cached (§6.3);
            // pipelines with large inputs still benefit via their (small)
            // intermediate chunks.
            if size <= max {
                ofc.cluster
                    .borrow_mut()
                    .write_with_dirty(
                        node,
                        &rc_key(&id),
                        RcValue::synthetic(size),
                        SimTime::ZERO,
                        false,
                    )
                    .result
                    .expect("cache preload");
            }
        }
        Scenario::Swift | Scenario::Miss => {}
    }
    ObjectRef { id, size }
}

/// Pins all scheduling to the measurement node (scenario isolation).
pub fn pin(tb: &Testbed, mem: u64) {
    tb.platform.set_scheduler(Box::new(PinnedScheduler {
        node: EXEC_NODE,
        mem_limit: mem,
        admission: ofc_faas::Admission::admit(),
    }));
}

/// Runs one single-stage function once under `scenario` and returns its
/// phase breakdown (Figure 7a–f).
pub fn single_stage(fn_name: &str, input_bytes: u64, scenario: Scenario, seed: u64) -> Phases {
    let p = profile(fn_name).unwrap_or_else(|| panic!("unknown function {fn_name}"));
    let tenant = TenantId::from("micro");
    let mut tb = testbed(scenario.plane(), WORKER_NODES, seed);
    register_single(&tb, &tenant, p, 2 << 30);
    pin(&tb, 2 << 30);
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let meta = gen_image_with_bytes(input_bytes, &mut rng);
    let input = stage_input(&mut tb, scenario, meta, "img");
    let mut args = Args::new();
    args.insert("input".into(), ArgValue::Obj(input.id));
    if let Some(spec) = p.arg {
        args.insert(spec.name.into(), ArgValue::Num((spec.lo + spec.hi) / 2.0));
    }
    tb.platform.submit(
        &mut tb.sim,
        InvocationRequest {
            function: FunctionId::from(p.name),
            tenant,
            args,
            seed,
            pipeline: None,
        },
    );
    tb.sim.run_until(SimTime::from_secs(3600));
    let records = tb.platform.drain_records();
    assert_eq!(records.len(), 1, "{fn_name}/{scenario:?}");
    Phases::from_records(&records)
}

/// The four multi-stage applications of Figure 7g–j.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum App {
    /// MapReduce word count.
    MapReduce,
    /// Thousand Island Scanner.
    This,
    /// Illegitimate Mobile App Detector.
    Imad,
    /// ServerlessBench image processing.
    ImageProcessing,
}

impl App {
    /// Display name.
    pub fn label(self) -> &'static str {
        match self {
            App::MapReduce => "map_reduce",
            App::This => "THIS",
            App::Imad => "IMAD",
            App::ImageProcessing => "image_processing",
        }
    }
}

/// Result of one pipeline run.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct PipelineRun {
    /// Summed phase breakdown across all stage invocations.
    pub phases: Phases,
    /// Wall-clock pipeline latency (seconds).
    pub wall: f64,
}

/// Runs one pipeline under `scenario` (Figure 7g–j).
pub fn pipeline(
    app: App,
    input_bytes: u64,
    fanout: usize,
    scenario: Scenario,
    seed: u64,
) -> PipelineRun {
    let tenant = TenantId::from("micro");
    let mut tb = testbed(scenario.plane(), WORKER_NODES, seed);
    // 512 MB covers every stage's peak; wide fan-outs spread over the
    // cluster (the first stage deterministically lands on node 0, where
    // the LH preload lives).
    register_stages(&tb, &tenant, 512 << 20);
    tb.platform.set_scheduler(Box::new(SpreadScheduler {
        mem_limit: 512 << 20,
        admission: ofc_faas::Admission::admit(),
    }));
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let driver: Rc<dyn ofc_faas::platform::PipelineDriver> = match app {
        App::MapReduce => {
            let meta = gen_text(Some(input_bytes), &mut rng);
            let input = stage_input(&mut tb, scenario, meta, "pipe-in");
            Rc::new(ScatterGather::word_count(tenant, input, fanout))
        }
        App::This => {
            // Large video inputs are stored pre-split into <=10 MB chunk
            // objects (§3), each individually cacheable.
            let n_chunks = input_bytes.div_ceil(8 << 20).max(1);
            let chunks: Vec<ObjectRef> = (0..n_chunks)
                .map(|i| {
                    let mut v = gen_video(&mut rng);
                    v.bytes = input_bytes / n_chunks;
                    stage_input(&mut tb, scenario, v, &format!("pipe-in{i}"))
                })
                .collect();
            Rc::new(ScatterGather::this_video_chunks(tenant, chunks, fanout))
        }
        App::Imad => {
            let meta = gen_text(Some(input_bytes), &mut rng);
            let input = stage_input(&mut tb, scenario, meta, "pipe-in");
            Rc::new(Sequence::imad(tenant, input))
        }
        App::ImageProcessing => {
            let meta = gen_image_with_bytes(input_bytes, &mut rng);
            let input = stage_input(&mut tb, scenario, meta, "pipe-in");
            Rc::new(Sequence::image_processing(tenant, input))
        }
    };
    tb.platform.submit_pipeline(&mut tb.sim, driver, seed);
    tb.sim.run_until(SimTime::from_secs(24 * 3600));
    let records = tb.platform.drain_records();
    let pipes = tb.platform.drain_pipeline_records();
    assert_eq!(pipes.len(), 1, "{app:?}/{scenario:?}");
    assert!(!pipes[0].failed, "{app:?}/{scenario:?} failed");
    PipelineRun {
        phases: Phases::from_records(&records),
        wall: pipes[0].end.saturating_since(pipes[0].start).as_secs_f64(),
    }
}

/// Figure 8 scenario: the state of the worker's cache when a sandbox asks
/// for memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScalingScenario {
    /// Sc0: no cache shrinking required.
    Sc0,
    /// Sc1: shrink without data movement.
    Sc1,
    /// Sc2: shrink with migration of hot objects.
    Sc2,
    /// Sc3: shrink with eviction (no migration).
    Sc3,
}

/// One Figure 8 measurement.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct ScalingRun {
    /// Input size (bytes).
    pub input_bytes: u64,
    /// Cache scale-down time on the critical path (ms).
    pub scaling_ms: f64,
    /// cgroup/docker resize time (ms).
    pub cgroup_ms: f64,
    /// Overall function execution time (ms).
    pub exec_ms: f64,
}

/// Runs the Figure 8 experiment for `wand_sepia` under one scenario.
pub fn cache_scaling(scenario: ScalingScenario, input_bytes: u64, seed: u64) -> ScalingRun {
    let p = profile("wand_sepia").expect("known profile");
    let tenant = TenantId::from("micro");
    // A small (2 GB) worker makes the cache interaction visible.
    let catalog = ofc_workloads::catalog::Catalog::new();
    let store = Rc::new(std::cell::RefCell::new(
        ofc_objstore::store::ObjectStore::swift(),
    ));
    let platform = ofc_faas::platform::Platform::build(
        ofc_faas::PlatformConfig {
            nodes: WORKER_NODES,
            node_mem: 2 << 30,
            ..ofc_faas::PlatformConfig::default()
        },
        ofc_faas::registry::Registry::new(),
        Box::new(ofc_faas::baselines::NoopPlane),
    );
    let ofc = ofc_core::ofc::Ofc::builder(&platform)
        .store(Rc::clone(&store))
        .features(feature_fn(catalog.clone()))
        .build();
    let mut tb = Testbed {
        sim: ofc_simtime::Sim::new(seed),
        platform,
        store,
        catalog,
        ofc: Some(ofc),
        imoc: None,
    };
    register_single(&tb, &tenant, p, 2 << 30);

    // Create the warm 64 MB container first (its own shrink is not part of
    // the measurement).
    pin(&tb, 64 << 20);
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let warm_meta = gen_image_with_bytes(512, &mut rng);
    let warm_input = stage_input(&mut tb, Scenario::Miss, warm_meta, "warm");
    let mut warm_args = Args::new();
    warm_args.insert("input".into(), ArgValue::Obj(warm_input.id));
    warm_args.insert("threshold".into(), ArgValue::Num(0.5));
    tb.platform.submit(
        &mut tb.sim,
        InvocationRequest {
            function: FunctionId::from(p.name),
            tenant,
            args: warm_args,
            seed,
            pipeline: None,
        },
    );
    tb.sim.run_until(SimTime::from_secs(60));
    tb.platform.drain_records();

    // Prepare the cache state on the executing node.
    {
        let ofc = tb.ofc.as_ref().expect("ofc installed");
        let mut cluster = ofc.cluster.borrow_mut();
        match scenario {
            ScalingScenario::Sc0 => {
                // Plenty of free memory: shrink the pool ahead of time.
                cluster.resize_pool(EXEC_NODE, 256 << 20).result.unwrap();
            }
            ScalingScenario::Sc1 => {} // full pool, no data
            ScalingScenario::Sc2 | ScalingScenario::Sc3 => {
                let pool = cluster.node(EXEC_NODE).pool_bytes();
                let objs = (pool / (10 << 20)) as usize;
                for i in 0..objs {
                    let key = ofc_rcstore::Key::from(format!("fill{i}"));
                    if cluster
                        .write_with_dirty(
                            EXEC_NODE,
                            &key,
                            RcValue::synthetic(10 << 20),
                            tb.sim.now(),
                            false,
                        )
                        .result
                        .is_err()
                    {
                        break;
                    }
                    if scenario == ScalingScenario::Sc2 {
                        for _ in 0..5 {
                            cluster.read(EXEC_NODE, &key, tb.sim.now()).result.ok();
                        }
                    }
                }
            }
        }
    }

    // The measured invocation: the paper's sweep maps 1 kB–3072 kB inputs
    // to 84–152 MB memory requirements; the warm 64 MB container must be
    // resized and the cache shrunk accordingly.
    let scale_down_nanos = |m: &ofc_telemetry::MetricsSnapshot| {
        m.histogram("agent.scale_down_nanos").map_or(0, |h| h.sum)
    };
    let before = scale_down_nanos(&tb.ofc.as_ref().expect("ofc").metrics());
    let meta = gen_image_with_bytes(input_bytes, &mut rng);
    // The paper's sweep maps 1 kB-3072 kB inputs to 84-152 MB requirements;
    // the limit must also cover this input's true footprint (no OOM retry
    // is part of the scenario).
    let curve = (84 << 20) + ((input_bytes as u128 * (68 << 20)) / (3072 << 10)) as u64;
    let needed = curve.max(p.memory(&meta, Some(0.5), seed + 1) + (16 << 20));
    pin(&tb, needed);
    let input = stage_input(&mut tb, Scenario::Miss, meta, "measured");
    let mut args = Args::new();
    args.insert("input".into(), ArgValue::Obj(input.id));
    args.insert("threshold".into(), ArgValue::Num(0.5));
    tb.platform.submit(
        &mut tb.sim,
        InvocationRequest {
            function: FunctionId::from(p.name),
            tenant,
            args,
            seed: seed + 1,
            pipeline: None,
        },
    );
    tb.sim.run_until(SimTime::from_secs(7200));
    let records = tb.platform.drain_records();
    assert_eq!(records.len(), 1);
    assert_eq!(records[0].completion, Completion::Success);
    let after = scale_down_nanos(&tb.ofc.as_ref().expect("ofc").metrics());
    let scaling = Duration::from_nanos(after.saturating_sub(before));
    ScalingRun {
        input_bytes,
        scaling_ms: scaling.as_secs_f64() * 1e3,
        cgroup_ms: tb.platform.config().resize_cost.as_secs_f64() * 1e3,
        exec_ms: records[0].total().as_secs_f64() * 1e3,
    }
}

/// Table 2 rows: OFC internal metrics for one macro run.
#[derive(Debug, Clone, Default, Serialize)]
pub struct Table2 {
    /// Cache scale-up operations.
    pub scale_ups: u64,
    /// Total scale-up time (s).
    pub scale_up_time_s: f64,
    /// Scale-downs without eviction.
    pub scale_down_no_eviction: u64,
    /// Scale-downs with migration.
    pub scale_down_migration: u64,
    /// Scale-downs with eviction.
    pub scale_down_eviction: u64,
    /// Total scale-down time (s).
    pub scale_down_time_s: f64,
    /// Memory predictions that fell short.
    pub bad_predictions: u64,
    /// Memory predictions that covered the need.
    pub good_predictions: u64,
    /// Invocations that permanently failed.
    pub failed_invocations: u64,
    /// Cache hit ratio (%).
    pub hit_ratio_pct: f64,
    /// Ephemeral (intermediate) data generated (GB).
    pub ephemeral_gb: f64,
}

/// Result of one §7.2.2 macro run.
#[derive(Debug, Clone, Serialize)]
pub struct MacroResult {
    /// Tenant profile label.
    pub profile: String,
    /// Configuration label (`OWK-Swift` or `OFC`).
    pub config: String,
    /// Per-tenant sum of invocation end-to-end times (s) — Figure 9's bars
    /// (pipelines report pipeline wall time).
    pub per_function_total_s: BTreeMap<String, f64>,
    /// OFC cache size over time, `(minutes, GB)` — Figure 10.
    pub cache_series: Vec<(f64, f64)>,
    /// Table 2 metrics (OFC runs only).
    pub table2: Table2,
}

/// Bake-off measurements that ride alongside a [`MacroResult`] without
/// touching its golden-frozen JSON shape: E+L latency, cache footprint,
/// and the cold-tier economics of rival policies (DESIGN.md §15).
#[derive(Debug, Clone, Default, Serialize)]
pub struct MacroExtras {
    /// Summed Extract + Load time across all invocations (s).
    pub el_seconds: f64,
    /// Peak cache footprint over the run (GB).
    pub peak_cache_gb: f64,
    /// Mean cache footprint over the run (GB).
    pub mean_cache_gb: f64,
    /// Accrued sandbox rent (nanodollars; InfiniCache only).
    pub rental_cost_nanodollars: u64,
    /// Restores served from the cold tier (InfiniCache only).
    pub cold_hits: u64,
    /// Prefetch fills issued by the policy tick (Faa$T only).
    pub prefetches: u64,
    /// Write-backs still queued when the run ended (durability check).
    pub persist_pending: u64,
    /// Write-backs parked in the dead-letter set (durability check).
    pub persist_dead_letters: u64,
}

/// Runs the §7.2.2 macro workload.
///
/// `tenants_per_function = 1` reproduces the 8-tenant experiment;
/// `3` reproduces the 24-tenant variant.
pub fn run_macro(
    kind: PlaneKind,
    profile_kind: TenantProfile,
    tenants_per_function: usize,
    duration: Duration,
    seed: u64,
) -> MacroResult {
    run_macro_with(
        kind,
        profile_kind,
        tenants_per_function,
        duration,
        seed,
        OfcConfig::default(),
    )
}

/// [`run_macro`] with an explicit OFC configuration (ablations).
pub fn run_macro_with(
    kind: PlaneKind,
    profile_kind: TenantProfile,
    tenants_per_function: usize,
    duration: Duration,
    seed: u64,
    ofc_cfg: OfcConfig,
) -> MacroResult {
    run_macro_full(
        kind,
        profile_kind,
        tenants_per_function,
        duration,
        seed,
        ofc_cfg,
        64 << 30,
    )
}

/// [`run_macro_with`] with explicit per-node memory (contention studies:
/// the 24-tenant hit-ratio drop only appears when the working set
/// pressures the cache).
#[allow(clippy::too_many_arguments)] // The full knob set of one experiment.
pub fn run_macro_full(
    kind: PlaneKind,
    profile_kind: TenantProfile,
    tenants_per_function: usize,
    duration: Duration,
    seed: u64,
    ofc_cfg: OfcConfig,
    node_mem: u64,
) -> MacroResult {
    run_macro_hooked(
        kind,
        profile_kind,
        tenants_per_function,
        duration,
        seed,
        ofc_cfg,
        node_mem,
        |_| {},
    )
}

/// [`run_macro_full`] with a hook invoked after setup, just before the
/// simulation runs. The chaos bench uses it to install a fault schedule
/// against the assembled testbed (and to stash handles for post-run
/// durability checks); everything else passes a no-op.
#[allow(clippy::too_many_arguments)] // The full knob set of one experiment.
pub fn run_macro_hooked(
    kind: PlaneKind,
    profile_kind: TenantProfile,
    tenants_per_function: usize,
    duration: Duration,
    seed: u64,
    ofc_cfg: OfcConfig,
    node_mem: u64,
    hook: impl FnOnce(&mut Testbed),
) -> MacroResult {
    run_macro_extended(
        kind,
        profile_kind,
        tenants_per_function,
        duration,
        seed,
        ofc_cfg,
        node_mem,
        hook,
    )
    .0
}

/// Runs the Fig 9-shaped macro mix under one cache policy and returns
/// both the figure result and the bake-off extras. Always drives the OFC
/// plane; `policy` selects the brain (see `ofc-bench --bin bakeoff`).
pub fn run_macro_bakeoff(
    policy: ofc_core::policy::PolicyKind,
    profile_kind: TenantProfile,
    tenants_per_function: usize,
    duration: Duration,
    seed: u64,
) -> (MacroResult, MacroExtras) {
    run_macro_extended(
        PlaneKind::Ofc,
        profile_kind,
        tenants_per_function,
        duration,
        seed,
        OfcConfig {
            policy,
            ..OfcConfig::default()
        },
        64 << 30,
        |_| {},
    )
}

/// [`run_macro_hooked`] plus the [`MacroExtras`] side channel. The extras
/// never feed figure JSON directly, so extending them cannot drift the
/// committed goldens.
#[allow(clippy::too_many_arguments)] // The full knob set of one experiment.
fn run_macro_extended(
    kind: PlaneKind,
    profile_kind: TenantProfile,
    tenants_per_function: usize,
    duration: Duration,
    seed: u64,
    ofc_cfg: OfcConfig,
    node_mem: u64,
    hook: impl FnOnce(&mut Testbed),
) -> (MacroResult, MacroExtras) {
    assert!(
        kind != PlaneKind::Redis,
        "the macro experiment compares Swift and OFC"
    );
    let mut tb = testbed_full(kind, WORKER_NODES, node_mem, seed, ofc_cfg);

    // Assemble the tenant set (8 × multiplier).
    let base = FaasLoad::paper_macro(profile_kind);
    let mut tenants = Vec::new();
    for copy in 0..tenants_per_function {
        for spec in base.tenants() {
            let mut spec = spec.clone();
            if copy > 0 {
                spec.name = format!("{}-{copy}", spec.name);
            }
            tenants.push(spec);
        }
    }
    let load = FaasLoad::new(
        FaasLoadConfig {
            duration,
            inputs_per_tenant: 12,
            seed,
        },
        tenants,
    );
    let prepared = load.install(&mut tb.sim, &tb.platform, &tb.store, &tb.catalog);

    // OFC: register schemas and pre-train models to maturity (production
    // functions have history, §7.1.3). Snapshot the prediction counters
    // afterwards so Table 2 only reports the observation window.
    let mut counter_baseline = (0u64, 0u64);
    if let Some(ofc) = &tb.ofc {
        for pt in &prepared {
            match pt.function.as_str() {
                "map_reduce" | "THIS" => {
                    for sp in &ofc_workloads::pipelines::STAGE_PROFILES {
                        ofc.register_function(pt.tenant.as_ref(), sp.name, sp.feature_schema());
                        pretrain_stage(ofc, &pt.tenant, sp, 200, seed);
                    }
                }
                name => {
                    let p = profile(name).expect("single-stage profile");
                    ofc.register_function(pt.tenant.as_ref(), p.name, p.feature_schema());
                    pretrain_single(&tb, &pt.tenant, p, 1200);
                }
            }
        }
        let m = ofc.metrics();
        counter_baseline = (
            m.counter("ml.good_predictions"),
            m.counter("ml.bad_predictions"),
        );
    }

    hook(&mut tb);

    tb.sim
        .run_until(SimTime::ZERO + duration + Duration::from_secs(600));

    let records = tb.platform.drain_records();
    let pipes = tb.platform.drain_pipeline_records();

    // Figure 9: per-tenant totals. Single-stage tenants sum invocation
    // latencies; pipeline tenants sum pipeline wall times.
    let mut per_function_total_s: BTreeMap<String, f64> = BTreeMap::new();
    let mut pipeline_tenants: std::collections::HashSet<String> = Default::default();
    for pt in &prepared {
        if matches!(pt.function.as_str(), "map_reduce" | "THIS") {
            pipeline_tenants.insert(pt.tenant.to_string());
        }
        per_function_total_s.insert(pt.tenant.to_string(), 0.0);
    }
    let mut pipe_tenant_by_id: BTreeMap<u64, String> = BTreeMap::new();
    for r in &records {
        if let Some(pid) = r.pipeline {
            pipe_tenant_by_id
                .entry(pid)
                .or_insert_with(|| r.tenant.to_string());
        } else if r.completion == Completion::Success {
            *per_function_total_s
                .entry(r.tenant.to_string())
                .or_default() += r.total().as_secs_f64();
        }
    }
    for p in &pipes {
        if let Some(tenant) = pipe_tenant_by_id.get(&p.id) {
            *per_function_total_s.entry(tenant.clone()).or_default() +=
                p.end.saturating_since(p.start).as_secs_f64();
        }
    }

    // Failures: OOM kills that exhausted retries, plus drops.
    let max_retries = tb.platform.config().max_retries;
    let failed = records
        .iter()
        .filter(|r| {
            matches!(r.completion, Completion::Unschedulable)
                || (r.completion == Completion::OomKilled && r.attempt >= max_retries)
        })
        .count() as u64;

    let (cache_series, table2) = match &tb.ofc {
        Some(ofc) => {
            let m = ofc.metrics();
            let (g0, b0) = counter_baseline;
            let good = m.counter("ml.good_predictions").saturating_sub(g0);
            let bad = m.counter("ml.bad_predictions").saturating_sub(b0);
            let series = m
                .gauge_series("agent.cache_size_bytes")
                .map(|s| s.downsample(64))
                .unwrap_or_default()
                .into_iter()
                .map(|(t, v)| (t.as_secs_f64() / 60.0, v / (1u64 << 30) as f64))
                .collect();
            // ofc-lint: allow(telemetry) reason=helper forwards literal registry names from the call sites below
            let hist_secs = |name: &str| m.histogram(name).map_or(0.0, |h| h.sum as f64 / 1e9);
            (
                series,
                Table2 {
                    scale_ups: m.counter("agent.scale_ups"),
                    scale_up_time_s: hist_secs("agent.scale_up_nanos"),
                    scale_down_no_eviction: m.counter("agent.scale_downs_plain"),
                    scale_down_migration: m.counter("agent.scale_downs_migration"),
                    scale_down_eviction: m.counter("agent.scale_downs_eviction"),
                    scale_down_time_s: hist_secs("agent.scale_down_nanos"),
                    bad_predictions: bad,
                    good_predictions: good,
                    failed_invocations: failed,
                    hit_ratio_pct: 100.0 * ofc_core::cache::plane_hit_ratio(&m),
                    ephemeral_gb: m.counter("plane.ephemeral_bytes") as f64 / (1u64 << 30) as f64,
                },
            )
        }
        None => (
            Vec::new(),
            Table2 {
                failed_invocations: failed,
                ..Table2::default()
            },
        ),
    };

    let el_seconds = records
        .iter()
        .map(|r| r.e_time.as_secs_f64() + r.l_time.as_secs_f64())
        .sum();
    let extras = match &tb.ofc {
        Some(ofc) => {
            let m = ofc.metrics();
            let gb = |v: f64| v / (1u64 << 30) as f64;
            let (peak, mean) = m
                .gauge_series("agent.cache_size_bytes")
                .map(|s| {
                    let pts = s.points();
                    let peak = pts.iter().map(|&(_, v)| v).fold(0.0f64, f64::max);
                    let mean = if pts.is_empty() {
                        0.0
                    } else {
                        pts.iter().map(|&(_, v)| v).sum::<f64>() / pts.len() as f64
                    };
                    (peak, mean)
                })
                .unwrap_or((0.0, 0.0));
            MacroExtras {
                el_seconds,
                peak_cache_gb: gb(peak),
                mean_cache_gb: gb(mean),
                rental_cost_nanodollars: m.counter("policy.rental_cost"),
                cold_hits: m.counter("policy.cold_hits"),
                prefetches: m.counter("policy.prefetches"),
                persist_pending: ofc.persistence.borrow().pending_count() as u64,
                persist_dead_letters: ofc.persistence.borrow().dead_letter_count() as u64,
            }
        }
        None => MacroExtras {
            el_seconds,
            ..MacroExtras::default()
        },
    };

    let result = MacroResult {
        profile: format!("{profile_kind:?}"),
        config: match kind {
            PlaneKind::Swift => "OWK-Swift".into(),
            PlaneKind::Redis => "OWK-Redis".into(),
            PlaneKind::Ofc => "OFC".into(),
        },
        per_function_total_s,
        cache_series,
        table2,
    };
    (result, extras)
}

/// Pre-trains a pipeline stage function's models.
fn pretrain_stage(
    ofc: &ofc_core::ofc::Ofc,
    tenant: &TenantId,
    sp: &'static ofc_workloads::pipelines::StageProfile,
    n: usize,
    seed: u64,
) {
    use ofc_dtree::data::Value;
    use rand::Rng;
    let key = (*tenant, FunctionId::from(sp.name));
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x57A63);
    let mut ml = ofc.ml.borrow_mut();
    for _ in 0..n {
        let bytes: u64 = rng.gen_range(4 << 10..30 << 20);
        let n_inputs = rng.gen_range(1..10u32);
        let fanout = rng.gen_range(0..10u32);
        let mem = sp.mem_base + ((bytes as f64) * sp.mem_per_byte) as u64;
        ml.observe(
            &key,
            ofc_core::ml::Observation {
                features: vec![
                    Value::Num(bytes as f64),
                    Value::Num(f64::from(n_inputs)),
                    Value::Num(f64::from(fanout)),
                ],
                actual_mem: mem,
                el_ratio: 0.7,
            },
        );
    }
}

/// §7.2.1 migration sweep: promotion latency per object volume.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct MigrationPoint {
    /// Migrated volume (MB).
    pub volume_mb: u64,
    /// Measured migration time (ms).
    pub time_ms: f64,
}

/// Measures migration-by-promotion times for the paper's sweep
/// (8 MB … 1 GB).
pub fn migration_sweep() -> Vec<MigrationPoint> {
    use ofc_rcstore::cluster::Cluster;
    use ofc_rcstore::ClusterConfig;
    [8u64, 64, 256, 512, 1024]
        .into_iter()
        .map(|volume_mb| {
            let mut cluster = Cluster::new(ClusterConfig {
                nodes: 4,
                replication_factor: 2,
                node_pool_bytes: 4 << 30,
                max_object_bytes: 10 << 20,
                segment_bytes: 16 << 20,
                ..ClusterConfig::default()
            });
            // The volume is split into <=10 MB objects, as OFC stores them.
            let n = (volume_mb).div_ceil(8);
            let mut total = Duration::ZERO;
            for i in 0..n {
                let key = ofc_rcstore::Key::from(format!("m{i}"));
                cluster
                    .write_with_dirty(
                        0,
                        &key,
                        RcValue::synthetic((volume_mb << 20) / n),
                        SimTime::ZERO,
                        false,
                    )
                    .result
                    .expect("fits");
                let t = cluster.migrate_by_promotion(&key, SimTime::ZERO);
                t.result.expect("backup exists");
                total += t.latency;
            }
            MigrationPoint {
                volume_mb,
                time_ms: total.as_secs_f64() * 1e3,
            }
        })
        .collect()
}

/// One point of the shard-scaling study (DESIGN.md §11): the same
/// deterministic store-op trace replayed against an `N`-shard cluster.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct ShardThroughput {
    /// Data-plane shards.
    pub shards: usize,
    /// Operations replayed.
    pub ops: u64,
    /// Summed store-op latency (s).
    pub total_latency_s: f64,
    /// Store operations per second of summed latency.
    pub ops_per_sec: f64,
}

/// Replays the Fig 9-shaped macro store mix — 70% reads / 30% writes,
/// sizes skewed small (1 KB – 256 KB), keys drawn Zipf-ish from a 512-key
/// population — against a raw cluster with `shards` data-plane shards.
/// Multi-shard runs batch replication (8 entries per buffer, periodic
/// flush every 64 ops); a single shard replays the exact unsharded,
/// unbatched seed path. Deterministic per seed.
pub fn shard_throughput(shards: usize, seed: u64) -> ShardThroughput {
    use ofc_rcstore::cluster::Cluster;
    use ofc_rcstore::shard::ShardConfig;
    use ofc_rcstore::{ClusterConfig, Key};
    use rand::Rng;

    let mut cluster = Cluster::new(ClusterConfig {
        nodes: 4,
        replication_factor: 2,
        node_pool_bytes: 2 << 30,
        max_object_bytes: 10 << 20,
        segment_bytes: 16 << 20,
        shard: ShardConfig {
            shards,
            batch_max_entries: if shards > 1 { 8 } else { 1 },
            ..ShardConfig::default()
        },
        ..ClusterConfig::default()
    });
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    const OPS: u64 = 20_000;
    const KEYS: u64 = 512;
    let mut total = Duration::ZERO;
    let now = SimTime::ZERO;
    for op in 0..OPS {
        // Zipf-ish skew: square a uniform draw so low key ids dominate.
        let u: f64 = rng.gen();
        let k = ((u * u) * KEYS as f64) as u64;
        let key = Key::from(format!("obj/{k}"));
        // Locality-aware routing, as OFC's scheduler does via the
        // coordinator oracle: run each op on the key's master node so
        // both configurations compare local-path latency.
        let node = if shards > 1 {
            cluster.shard_master(cluster.shard_of(&key))
        } else {
            (k % 4) as usize
        };
        let size = match rng.gen_range(0..10) {
            0..=5 => 1 << 10,
            6..=8 => 64 << 10,
            _ => 256 << 10,
        };
        let write = rng.gen_range(0..10) < 3;
        let (ok, latency) = if write {
            let t = cluster.write(node, &key, RcValue::synthetic(size), now);
            (t.result.is_ok(), t.latency)
        } else {
            let t = cluster.read(node, &key, now);
            (t.result.is_ok(), t.latency)
        };
        // Cold reads miss; only count latency of successful ops so every
        // shard count sums over the same op population.
        if ok {
            total += latency;
        }
        if op % 64 == 0 {
            cluster.flush_replication();
        }
    }
    cluster.flush_replication();
    let secs = total.as_secs_f64();
    ShardThroughput {
        shards,
        ops: OPS,
        total_latency_s: secs,
        ops_per_sec: OPS as f64 / secs.max(1e-12),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig7_local_hit_beats_swift_for_small_images() {
        let swift = single_stage("wand_edge", 16 << 10, Scenario::Swift, 3);
        let lh = single_stage("wand_edge", 16 << 10, Scenario::LocalHit, 3);
        // The headline: up to ~82% improvement for single-stage functions.
        let gain = 1.0 - lh.total() / swift.total();
        assert!(gain > 0.5, "LH gain only {:.0}%", gain * 100.0);
        // E&L dominate the Swift run (97% at 128 kB per Figure 3).
        assert!((swift.e + swift.l) / swift.total() > 0.7);
        // The LH Load phase is the constant ~11 ms shadow persist.
        assert!(lh.l > 0.010 && lh.l < 0.020, "LH L-phase {}", lh.l);
    }

    #[test]
    fn fig7_scenario_ordering_holds() {
        let runs: Vec<(Scenario, f64)> = Scenario::ALL
            .iter()
            .map(|&s| (s, single_stage("wand_sepia", 64 << 10, s, 5).total()))
            .collect();
        let get = |s: Scenario| runs.iter().find(|(x, _)| *x == s).unwrap().1;
        // Redis ≈ LH < RH < M < Swift.
        assert!(get(Scenario::LocalHit) < get(Scenario::RemoteHit));
        assert!(get(Scenario::RemoteHit) < get(Scenario::Miss));
        assert!(get(Scenario::Miss) < get(Scenario::Swift));
        let redis_vs_lh =
            (get(Scenario::Redis) - get(Scenario::LocalHit)).abs() / get(Scenario::LocalHit);
        assert!(
            redis_vs_lh < 0.6,
            "Redis and LH should be close: {redis_vs_lh:.2}"
        );
    }

    #[test]
    fn fig7_pipeline_improves_under_cache() {
        let swift = pipeline(App::MapReduce, 5 << 20, 4, Scenario::Swift, 7);
        let lh = pipeline(App::MapReduce, 5 << 20, 4, Scenario::LocalHit, 7);
        assert!(
            lh.wall < swift.wall,
            "LH {} !< Swift {}",
            lh.wall,
            swift.wall
        );
        let gain = 1.0 - lh.wall / swift.wall;
        assert!(gain > 0.25, "pipeline gain only {:.0}%", gain * 100.0);
    }

    #[test]
    fn fig8_scenarios_order_by_cost() {
        let sc0 = cache_scaling(ScalingScenario::Sc0, 16 << 10, 1);
        let sc1 = cache_scaling(ScalingScenario::Sc1, 16 << 10, 1);
        let sc3 = cache_scaling(ScalingScenario::Sc3, 16 << 10, 1);
        assert!(
            sc0.scaling_ms < 0.01,
            "Sc0 must not scale: {}",
            sc0.scaling_ms
        );
        assert!(
            sc1.scaling_ms > 0.2 && sc1.scaling_ms < 1.0,
            "Sc1 {}",
            sc1.scaling_ms
        );
        assert!(
            sc3.scaling_ms > sc1.scaling_ms,
            "Sc3 {} !> Sc1 {}",
            sc3.scaling_ms,
            sc1.scaling_ms
        );
        // cgroup resize is the constant ~23.8 ms.
        assert!((sc1.cgroup_ms - 23.8).abs() < 0.1);
    }

    #[test]
    fn migration_sweep_matches_paper_scale() {
        let points = migration_sweep();
        let at = |mb: u64| points.iter().find(|p| p.volume_mb == mb).unwrap().time_ms;
        // Paper: 0.18 ms @ 8 MB … 13.5 ms @ 1 GB (plus per-object bases
        // since OFC splits volumes into <=10 MB objects).
        assert!(at(8) < 1.0, "8 MB: {} ms", at(8));
        assert!(at(1024) > at(8) * 10.0);
        assert!(at(1024) < 40.0, "1 GB: {} ms", at(1024));
    }

    #[test]
    fn sharded_batched_store_beats_single_shard_by_a_quarter() {
        let one = shard_throughput(1, 17);
        let four = shard_throughput(4, 17);
        assert_eq!(one.ops, four.ops, "identical traces");
        let gain = four.ops_per_sec / one.ops_per_sec;
        assert!(
            gain >= 1.25,
            "4-shard gain only {gain:.2}x ({:.0} vs {:.0} ops/s)",
            four.ops_per_sec,
            one.ops_per_sec
        );
    }

    #[test]
    fn shard_throughput_is_deterministic_per_seed() {
        let a = shard_throughput(4, 23);
        let b = shard_throughput(4, 23);
        assert_eq!(a.total_latency_s.to_bits(), b.total_latency_s.to_bits());
    }

    #[test]
    fn macro_run_produces_fig9_table2() {
        let dur = Duration::from_secs(300);
        let swift = run_macro(PlaneKind::Swift, TenantProfile::Normal, 1, dur, 11);
        let ofc = run_macro(PlaneKind::Ofc, TenantProfile::Normal, 1, dur, 11);
        assert_eq!(swift.per_function_total_s.len(), 8);
        assert_eq!(ofc.per_function_total_s.len(), 8);
        // OFC outperforms OWK-Swift in aggregate.
        let total = |m: &MacroResult| m.per_function_total_s.values().sum::<f64>();
        assert!(
            total(&ofc) < total(&swift),
            "OFC {} !< Swift {}",
            total(&ofc),
            total(&swift)
        );
        assert_eq!(ofc.table2.failed_invocations, 0);
        assert!(
            ofc.table2.hit_ratio_pct > 50.0,
            "hit {}",
            ofc.table2.hit_ratio_pct
        );
        assert!(!ofc.cache_series.is_empty());
    }
}
