//! ML experiments (§7.1): Table 1, Figures 5–6, the cache-benefit
//! classifier metrics, and maturation quickness.
//!
//! Unlike the cache experiments these are **real measurements** of the
//! from-scratch classifier implementations — real training, real
//! cross-validated accuracy, real wall-clock prediction latency.

use ofc_dtree::c45::C45;
use ofc_dtree::data::{Dataset, Value};
use ofc_dtree::eval::{cross_validate, Evaluation};
use ofc_dtree::forest::{ForestParams, RandomForest};
use ofc_dtree::hoeffding::HoeffdingLearner;
use ofc_dtree::random_tree::RandomTree;
use ofc_dtree::Classifier;
use ofc_simtime::stats::{Histogram, Summary};
use ofc_workloads::datasets::{cache_benefit_dataset, memory_dataset};
use ofc_workloads::multimedia::PROFILES;
use serde::Serialize;
use std::time::Instant;

/// The four Table 1 algorithms.
pub const ALGORITHMS: [&str; 4] = ["HoeffdingTree", "J48", "RandomForest", "RandomTree"];

/// The three Table 1 interval sizes, in bytes.
pub const INTERVAL_SIZES: [u64; 3] = [32 << 20, 16 << 20, 8 << 20];

/// Experiment knobs (defaults keep every binary under ~1 min).
#[derive(Debug, Clone)]
pub struct MlxParams {
    /// Invocation samples generated per function.
    pub samples_per_fn: usize,
    /// Cross-validation folds.
    pub folds: usize,
    /// RandomForest ensemble size.
    pub forest_trees: usize,
    /// Seed.
    pub seed: u64,
}

impl Default for MlxParams {
    fn default() -> Self {
        MlxParams {
            samples_per_fn: 400,
            folds: 5,
            forest_trees: 25,
            seed: 7,
        }
    }
}

/// Cross-validates `algorithm` on `ds`.
pub fn evaluate_algorithm(algorithm: &str, ds: &Dataset, params: &MlxParams) -> Evaluation {
    match algorithm {
        "J48" => cross_validate(&C45::default(), ds, params.folds, params.seed),
        "RandomTree" => cross_validate(&RandomTree::default(), ds, params.folds, params.seed),
        "RandomForest" => cross_validate(
            &RandomForest::new(ForestParams {
                n_trees: params.forest_trees,
                seed: params.seed,
                ..ForestParams::default()
            }),
            ds,
            params.folds,
            params.seed,
        ),
        "HoeffdingTree" => {
            cross_validate(&HoeffdingLearner::default(), ds, params.folds, params.seed)
        }
        other => panic!("unknown algorithm {other}"),
    }
}

/// One Table 1 row: `(interval, algorithm)` averaged over all functions.
#[derive(Debug, Clone, Serialize)]
pub struct Table1Row {
    /// Interval size in MB.
    pub interval_mb: u64,
    /// Algorithm name.
    pub algorithm: String,
    /// Mean exact-prediction rate (%).
    pub exact_pct: f64,
    /// Mean exact-or-over rate (%).
    pub eo_pct: f64,
}

/// Runs Table 1: accuracy of four algorithms at three interval sizes.
pub fn table1(params: &MlxParams) -> Vec<Table1Row> {
    let mut rows = Vec::new();
    for &interval in &INTERVAL_SIZES {
        for algo in ALGORITHMS {
            let mut exact = 0.0;
            let mut eo = 0.0;
            for (i, p) in PROFILES.iter().enumerate() {
                let ds = memory_dataset(
                    p,
                    params.samples_per_fn,
                    interval,
                    params.seed.wrapping_add(i as u64),
                );
                let eval = evaluate_algorithm(algo, &ds, params);
                exact += eval.accuracy();
                eo += eval.eo_rate();
            }
            let n = PROFILES.len() as f64;
            rows.push(Table1Row {
                interval_mb: interval >> 20,
                algorithm: algo.to_string(),
                exact_pct: 100.0 * exact / n,
                eo_pct: 100.0 * eo / n,
            });
        }
    }
    rows
}

/// Figure 5 output: the distribution of raw J48 prediction errors.
#[derive(Debug, Clone, Serialize)]
pub struct Fig5Result {
    /// Histogram bucket low edges (MB difference to truth).
    pub bucket_edges_mb: Vec<f64>,
    /// Per-bucket counts.
    pub counts: Vec<u64>,
    /// Fraction of overpredictions within 3 intervals of the truth (%).
    pub over_within_3_pct: f64,
    /// Mean memory waste of overpredictions (MB).
    pub mean_over_waste_mb: f64,
    /// Exact / over / under split (%).
    pub exact_pct: f64,
    /// Overprediction share (%).
    pub over_pct: f64,
    /// Underprediction share (%).
    pub under_pct: f64,
}

/// Runs Figure 5: error distribution of J48 with 16 MB intervals, all
/// functions combined, on held-out halves.
pub fn fig5(params: &MlxParams) -> Fig5Result {
    let interval = 16 << 20;
    let mut hist = Histogram::new(-160.0, 160.0, 20);
    let (mut exact, mut over, mut under) = (0u64, 0u64, 0u64);
    let mut over_within3 = 0u64;
    let mut over_waste_mb = Summary::new();
    for (i, p) in PROFILES.iter().enumerate() {
        let train = memory_dataset(p, params.samples_per_fn, interval, params.seed + i as u64);
        let test = memory_dataset(
            p,
            params.samples_per_fn / 2,
            interval,
            params.seed ^ 0xDEAD ^ i as u64,
        );
        let model = C45::train(&train, &Default::default());
        for row in test.rows() {
            let pred = model.predict(&row.values);
            let truth = row.label;
            let diff_mb = (i64::from(pred) - i64::from(truth)) * 16;
            hist.record(diff_mb as f64);
            match pred.cmp(&truth) {
                std::cmp::Ordering::Equal => exact += 1,
                std::cmp::Ordering::Greater => {
                    over += 1;
                    if pred - truth <= 3 {
                        over_within3 += 1;
                    }
                    over_waste_mb.record(diff_mb as f64);
                }
                std::cmp::Ordering::Less => under += 1,
            }
        }
    }
    let total = (exact + over + under) as f64;
    Fig5Result {
        bucket_edges_mb: hist.bins().map(|(e, _)| e).collect(),
        counts: hist.bins().map(|(_, c)| c).collect(),
        over_within_3_pct: if over == 0 {
            100.0
        } else {
            100.0 * over_within3 as f64 / over as f64
        },
        mean_over_waste_mb: over_waste_mb.mean().unwrap_or(0.0),
        exact_pct: 100.0 * exact as f64 / total,
        over_pct: 100.0 * over as f64 / total,
        under_pct: 100.0 * under as f64 / total,
    }
}

/// Figure 6 output: real prediction-time distribution per interval size.
#[derive(Debug, Clone, Serialize)]
pub struct Fig6Row {
    /// Interval size (MB).
    pub interval_mb: u64,
    /// Median prediction time (µs).
    pub median_us: f64,
    /// 99th-percentile prediction time (µs).
    pub p99_us: f64,
    /// Mean prediction time (µs).
    pub mean_us: f64,
}

/// Runs Figure 6: wall-clock J48 classification latency, measured on this
/// machine over all function models.
pub fn fig6(params: &MlxParams) -> Vec<Fig6Row> {
    INTERVAL_SIZES
        .iter()
        .map(|&interval| {
            let mut times = Summary::new();
            for (i, p) in PROFILES.iter().enumerate() {
                let ds = memory_dataset(p, params.samples_per_fn, interval, params.seed + i as u64);
                let model = C45::train(&ds, &Default::default());
                let instances: Vec<&Vec<Value>> =
                    ds.rows().iter().map(|r| &r.values).take(200).collect();
                // Warm up, then measure each prediction individually.
                for inst in &instances {
                    std::hint::black_box(model.predict(inst));
                }
                for inst in &instances {
                    let t0 = Instant::now();
                    std::hint::black_box(model.predict(inst));
                    times.record(t0.elapsed().as_nanos() as f64 / 1e3);
                }
            }
            Fig6Row {
                interval_mb: interval >> 20,
                median_us: times.median().unwrap_or(0.0),
                p99_us: times.quantile(0.99).unwrap_or(0.0),
                mean_us: times.mean().unwrap_or(0.0),
            }
        })
        .collect()
}

/// RandomForest prediction latency at 16 MB intervals (§7.1.2's contrast:
/// ~106 µs median vs J48's ~3 µs).
pub fn fig6_forest(params: &MlxParams) -> Fig6Row {
    let interval = 16 << 20;
    let mut times = Summary::new();
    for (i, p) in PROFILES.iter().enumerate().take(6) {
        let ds = memory_dataset(p, params.samples_per_fn, interval, params.seed + i as u64);
        let forest = ofc_dtree::forest::Forest::train(
            &ds,
            &ForestParams {
                n_trees: 50,
                seed: params.seed,
                ..ForestParams::default()
            },
        );
        for row in ds.rows().iter().take(100) {
            let t0 = Instant::now();
            std::hint::black_box(forest.predict(&row.values));
            times.record(t0.elapsed().as_nanos() as f64 / 1e3);
        }
    }
    Fig6Row {
        interval_mb: interval >> 20,
        median_us: times.median().unwrap_or(0.0),
        p99_us: times.quantile(0.99).unwrap_or(0.0),
        mean_us: times.mean().unwrap_or(0.0),
    }
}

/// Cache-benefit classifier metrics (§7.1.1).
#[derive(Debug, Clone, Serialize)]
pub struct BenefitRow {
    /// Algorithm name.
    pub algorithm: String,
    /// Precision on the "beneficial" class (%).
    pub precision_pct: f64,
    /// Recall on the "beneficial" class (%).
    pub recall_pct: f64,
    /// F-measure (%).
    pub f_measure_pct: f64,
}

/// Runs the §7.1.1 cache-benefit comparison across the four algorithms.
pub fn cache_benefit(params: &MlxParams) -> Vec<BenefitRow> {
    ALGORITHMS
        .iter()
        .map(|algo| {
            let mut merged = Evaluation::new(2);
            for (i, p) in PROFILES.iter().enumerate() {
                let ds = cache_benefit_dataset(
                    p,
                    params.samples_per_fn,
                    params.seed.wrapping_add(i as u64),
                );
                // Functions whose benefit never varies are trivially
                // predicted; they still count, as in the paper's average.
                merged.merge(&evaluate_algorithm(algo, &ds, params));
            }
            BenefitRow {
                algorithm: algo.to_string(),
                precision_pct: 100.0 * merged.precision(1),
                recall_pct: 100.0 * merged.recall(1),
                f_measure_pct: 100.0 * merged.f_measure(1),
            }
        })
        .collect()
}

/// Maturation quickness (§7.1.3) across the 19 functions.
#[derive(Debug, Clone, Serialize)]
pub struct MaturationResult {
    /// Per-function invocations-to-maturity (`None` → did not mature
    /// within the cap).
    pub per_function: Vec<(String, Option<u64>)>,
    /// Median over matured functions.
    pub median: f64,
    /// 75th percentile.
    pub p75: f64,
    /// 95th percentile.
    pub p95: f64,
    /// Functions that matured within the minimum 100 invocations.
    pub matured_at_floor: usize,
}

/// Runs the maturation experiment: online learning per function until the
/// §5.3 criterion holds.
pub fn maturation(cap: usize, seed: u64) -> MaturationResult {
    use ofc_core::ml::{MlConfig, MlEngine, Observation};
    use ofc_faas::{FunctionId, TenantId};
    let mut per_function = Vec::new();
    let mut points = Summary::new();
    let mut at_floor = 0usize;
    for (i, p) in PROFILES.iter().enumerate() {
        let mut ml = MlEngine::new(MlConfig::default());
        let key = (TenantId::from("t"), FunctionId::from(p.name));
        ml.register(key, p.feature_schema());
        let stream = ofc_workloads::datasets::invocation_stream(p, cap, seed + i as u64);
        for s in stream {
            ml.observe(
                &key,
                Observation {
                    features: s.features,
                    actual_mem: s.mem_bytes,
                    el_ratio: if s.cache_benefit { 0.9 } else { 0.1 },
                },
            );
            if ml.is_mature(&key) {
                break;
            }
        }
        let matured = ml.matured_at(&key);
        if let Some(n) = matured {
            points.record(n as f64);
            if n <= 100 {
                at_floor += 1;
            }
        }
        per_function.push((p.name.to_string(), matured));
    }
    MaturationResult {
        per_function,
        median: points.median().unwrap_or(f64::NAN),
        p75: points.quantile(0.75).unwrap_or(f64::NAN),
        p95: points.quantile(0.95).unwrap_or(f64::NAN),
        matured_at_floor: at_floor,
    }
}

/// Figure 2 data: memory vs byte size and vs sigma for `wand_blur`.
#[derive(Debug, Clone, Serialize)]
pub struct Fig2Point {
    /// Input byte size (MB).
    pub input_mb: f64,
    /// Blur sigma.
    pub sigma: f64,
    /// Memory used (MB).
    pub mem_mb: f64,
}

/// Samples the Figure 2 scatter.
pub fn fig2(n: usize, seed: u64) -> Vec<Fig2Point> {
    use ofc_workloads::datasets::sample_media;
    use rand::Rng;
    use rand::SeedableRng;
    let p = ofc_workloads::multimedia::profile("wand_blur").expect("known profile");
    let spec = p.arg.expect("wand_blur has sigma");
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            let meta = sample_media(p, &mut rng);
            let sigma = rng.gen_range(spec.lo..spec.hi);
            let mem = p.memory(&meta, Some(sigma), seed + i as u64);
            Fig2Point {
                input_mb: meta.bytes as f64 / (1 << 20) as f64,
                sigma,
                mem_mb: mem as f64 / (1 << 20) as f64,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> MlxParams {
        MlxParams {
            samples_per_fn: 120,
            folds: 3,
            forest_trees: 5,
            seed: 1,
        }
    }

    #[test]
    fn table1_preserves_paper_ordering() {
        // Shape checks at reduced scale: J48 & RandomForest lead, accuracy
        // drops as intervals narrow, EO >= exact.
        let params = quick();
        let rows = table1(&params);
        assert_eq!(rows.len(), 12);
        let get = |mb: u64, algo: &str| {
            rows.iter()
                .find(|r| r.interval_mb == mb && r.algorithm == algo)
                .unwrap()
        };
        for row in &rows {
            assert!(row.eo_pct >= row.exact_pct - 1e-9, "{row:?}");
        }
        // Coarser intervals are easier.
        assert!(get(32, "J48").exact_pct > get(8, "J48").exact_pct);
        // J48 beats HoeffdingTree at every size (the paper's ranking).
        for mb in [32, 16, 8] {
            assert!(
                get(mb, "J48").exact_pct > get(mb, "HoeffdingTree").exact_pct,
                "J48 must beat HoeffdingTree at {mb} MB"
            );
        }
    }

    #[test]
    fn fig5_overpredictions_cluster_near_truth() {
        let r = fig5(&quick());
        assert!(r.exact_pct > 50.0, "exact {:.1}%", r.exact_pct);
        assert!(
            r.over_within_3_pct > 60.0,
            "within3 {:.1}%",
            r.over_within_3_pct
        );
        assert_eq!(r.counts.len(), r.bucket_edges_mb.len());
        assert!((r.exact_pct + r.over_pct + r.under_pct - 100.0).abs() < 1e-6);
    }

    #[test]
    fn fig6_predictions_are_microseconds() {
        let params = MlxParams {
            samples_per_fn: 80,
            ..quick()
        };
        let rows = fig6(&params);
        assert_eq!(rows.len(), 3);
        for r in &rows {
            assert!(
                r.median_us < 1000.0,
                "median {} µs is not µs-scale",
                r.median_us
            );
            assert!(r.median_us > 0.0);
        }
    }

    #[test]
    fn cache_benefit_j48_scores_high() {
        let rows = cache_benefit(&quick());
        let j48 = rows.iter().find(|r| r.algorithm == "J48").unwrap();
        assert!(
            j48.precision_pct > 85.0,
            "precision {:.1}",
            j48.precision_pct
        );
        assert!(j48.recall_pct > 85.0, "recall {:.1}", j48.recall_pct);
    }

    #[test]
    fn fig2_scatter_has_paper_properties() {
        let pts = fig2(200, 3);
        assert_eq!(pts.len(), 200);
        let max_mem = pts.iter().map(|p| p.mem_mb).fold(0.0, f64::max);
        let min_mem = pts.iter().map(|p| p.mem_mb).fold(f64::MAX, f64::min);
        // Wide memory spread (tens of MB to hundreds), as in Figure 2.
        assert!(max_mem > 300.0, "max {max_mem:.0} MB");
        assert!(min_mem < 100.0, "min {min_mem:.0} MB");
    }
}
