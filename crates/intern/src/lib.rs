//! Global string interner for the simulator's hot-path keys.
//!
//! Every object key, bucket name, tenant id, and function id that flows
//! through the data plane used to be an `Arc<str>`: cheap to clone, but
//! every map probe paid SipHash over the full string and every identity
//! check risked a byte-wise compare. [`Istr`] replaces that with a fat
//! *interned* handle: a `u32` slab id paired with a `&'static str` into
//! the interner's arena.
//!
//! Semantics are deliberately conservative so the swap is invisible to
//! the simulation:
//!
//! - **Eq goes through the id; Hash through a precomputed string hash** —
//!   both O(1), and with [`IdHashMap`] the hash is a single multiply
//!   instead of SipHash over the bytes. Hashing the id instead would be
//!   just as fast but would let racy id-assignment order leak into
//!   hash-map iteration order (and from there into float-sum order and
//!   ML tie-breaks), making parallel runs diverge from serial ones.
//! - **Ord compares the resolved strings** — every `BTreeMap`,
//!   `BTreeSet`, and `sort()` over keys orders exactly as it did with
//!   `Arc<str>`. This matters because slab ids are assigned in first-seen
//!   order, which is *not* deterministic across threads (parallel sims
//!   intern concurrently); id order must therefore never be observable.
//! - **Deref to `str`** — call sites that hash bytes (shard routing) or
//!   slice the key keep working unchanged on the resolved string.
//!
//! Interned strings are leaked (`Box::leak`) and live for the process
//! lifetime. The key universe of a simulation run is small (object names,
//! function ids) and heavily re-used, so the arena is bounded in practice;
//! see DESIGN.md §17 for the lifecycle discussion.

use std::borrow::Cow;
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::hash::{BuildHasherDefault, Hash, Hasher};
use std::ops::Deref;
use std::sync::{OnceLock, RwLock};

/// An interned, copyable string handle.
///
/// 16 bytes: `u32` slab id, a precomputed string hash, and the canonical
/// `&'static str`. Copy, so the hot path moves ids instead of bumping
/// `Arc` refcounts or cloning heap strings.
#[derive(Clone, Copy)]
pub struct Istr {
    id: u32,
    /// FNV-1a of the string bytes, computed once at intern time. `Hash`
    /// feeds *this* to the hasher rather than the slab id: ids are
    /// assigned in first-seen order, which varies with thread
    /// interleaving, and hash-map iteration order must not vary with it
    /// (parallel sims would diverge from serial ones). The string hash is
    /// a pure function of the contents, so map layouts are identical
    /// either way.
    shash: u32,
    s: &'static str,
}

/// FNV-1a over the string bytes — the deterministic hash identity of an
/// interned string.
fn str_hash(s: &str) -> u32 {
    let mut h: u32 = 0x811c_9dc5;
    for &b in s.as_bytes() {
        h ^= u32::from(b);
        h = h.wrapping_mul(0x0100_0193);
    }
    h
}

impl Istr {
    /// Intern `s`, returning the canonical handle for its contents.
    ///
    /// Two calls with equal contents always return handles with equal
    /// ids, across threads.
    pub fn intern(s: &str) -> Istr {
        let table = table();
        // Fast path: already interned.
        {
            let rd = table.read().unwrap();
            if let Some(&k) = rd.map.get(s) {
                return k;
            }
        }
        let mut wr = table.write().unwrap();
        // Double-check: another thread may have interned it meanwhile.
        if let Some(&k) = wr.map.get(s) {
            return k;
        }
        let canon: &'static str = Box::leak(s.to_owned().into_boxed_str());
        let id = u32::try_from(wr.map.len()).expect("interner slab id overflow");
        let k = Istr {
            id,
            shash: str_hash(canon),
            s: canon,
        };
        wr.map.insert(canon, k);
        k
    }

    /// The slab id. Stable for the process lifetime, but **not**
    /// deterministic across runs — never let id order become observable.
    #[inline]
    pub fn id(self) -> u32 {
        self.id
    }

    /// The canonical resolved string.
    #[inline]
    pub fn as_str(self) -> &'static str {
        self.s
    }
}

impl Deref for Istr {
    type Target = str;
    #[inline]
    fn deref(&self) -> &str {
        self.s
    }
}

impl AsRef<str> for Istr {
    #[inline]
    fn as_ref(&self) -> &str {
        self.s
    }
}

impl PartialEq for Istr {
    #[inline]
    fn eq(&self, other: &Istr) -> bool {
        self.id == other.id
    }
}

impl Eq for Istr {}

impl PartialEq<str> for Istr {
    #[inline]
    fn eq(&self, other: &str) -> bool {
        self.s == other
    }
}

impl PartialEq<&str> for Istr {
    #[inline]
    fn eq(&self, other: &&str) -> bool {
        self.s == *other
    }
}

impl Hash for Istr {
    #[inline]
    fn hash<H: Hasher>(&self, state: &mut H) {
        // The precomputed *string* hash, not the slab id: map layout and
        // therefore iteration order must be a function of contents only.
        state.write_u32(self.shash);
    }
}

// Ordering resolves through the string so that every ordered container
// behaves exactly as it did when keys were `Arc<str>`. Id order is
// first-seen order and varies run to run; it must stay unobservable.
impl Ord for Istr {
    #[inline]
    fn cmp(&self, other: &Istr) -> std::cmp::Ordering {
        if self.id == other.id {
            std::cmp::Ordering::Equal
        } else {
            self.s.cmp(other.s)
        }
    }
}

impl PartialOrd for Istr {
    #[inline]
    fn partial_cmp(&self, other: &Istr) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl fmt::Display for Istr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.s)
    }
}

impl fmt::Debug for Istr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self.s, f)
    }
}

impl Default for Istr {
    fn default() -> Istr {
        Istr::intern("")
    }
}

impl From<&str> for Istr {
    fn from(s: &str) -> Istr {
        Istr::intern(s)
    }
}

impl From<String> for Istr {
    fn from(s: String) -> Istr {
        Istr::intern(&s)
    }
}

impl From<&String> for Istr {
    fn from(s: &String) -> Istr {
        Istr::intern(s)
    }
}

impl From<std::sync::Arc<str>> for Istr {
    fn from(s: std::sync::Arc<str>) -> Istr {
        Istr::intern(&s)
    }
}

impl From<Cow<'_, str>> for Istr {
    fn from(s: Cow<'_, str>) -> Istr {
        Istr::intern(&s)
    }
}

impl From<Istr> for String {
    fn from(s: Istr) -> String {
        s.as_str().to_owned()
    }
}

struct Table {
    map: HashMap<&'static str, Istr>,
}

fn table() -> &'static RwLock<Table> {
    static TABLE: OnceLock<RwLock<Table>> = OnceLock::new();
    TABLE.get_or_init(|| {
        RwLock::new(Table {
            map: HashMap::new(),
        })
    })
}

/// Number of distinct strings interned so far (diagnostics only).
pub fn interned_count() -> usize {
    table().read().unwrap().map.len()
}

// ---------------------------------------------------------------------------
// Pair-compose tables
// ---------------------------------------------------------------------------
//
// The cache layer derives RAMCloud keys from object ids ("{bucket}/{key}")
// and chunk keys from parent keys ("{key}#chunk{i}") on every access. With
// plain strings that is a `format!` allocation per access; here the derived
// handle is memoised under the (id, id) pair so steady-state derivation is
// a single u64-keyed map probe.

type PairMap = HashMap<u64, Istr, IdBuildHasher>;

fn pair_table(cell: &'static OnceLock<RwLock<PairMap>>) -> &'static RwLock<PairMap> {
    cell.get_or_init(|| RwLock::new(PairMap::default()))
}

fn compose_cached(
    cell: &'static OnceLock<RwLock<PairMap>>,
    pair: u64,
    make: impl FnOnce() -> String,
) -> Istr {
    let table = pair_table(cell);
    {
        let rd = table.read().unwrap();
        if let Some(&k) = rd.get(&pair) {
            return k;
        }
    }
    let composed = Istr::intern(&make());
    table.write().unwrap().insert(pair, composed);
    composed
}

/// Memoised `"{a}/{b}"` composition (object id → store key).
pub fn compose_slash(a: Istr, b: Istr) -> Istr {
    static CELL: OnceLock<RwLock<PairMap>> = OnceLock::new();
    let pair = (u64::from(a.id) << 32) | u64::from(b.id);
    compose_cached(&CELL, pair, || format!("{a}/{b}"))
}

/// Memoised `"{key}#chunk{i}"` composition (chunked payload sub-keys).
pub fn compose_chunk(key: Istr, i: u32) -> Istr {
    static CELL: OnceLock<RwLock<PairMap>> = OnceLock::new();
    let pair = (u64::from(key.id) << 32) | u64::from(i);
    compose_cached(&CELL, pair, || format!("{key}#chunk{i}"))
}

// ---------------------------------------------------------------------------
// Id-oriented hasher
// ---------------------------------------------------------------------------

/// A fast multiply-mix hasher for small integer-shaped keys ([`Istr`],
/// ids, id pairs). Not DoS-resistant — simulation-internal maps only.
#[derive(Default)]
pub struct IdHasher {
    state: u64,
}

const MIX: u64 = 0x9e37_79b9_7f4a_7c15;

impl Hasher for IdHasher {
    #[inline]
    fn finish(&self) -> u64 {
        // Final avalanche (splitmix64 tail) so sequential ids spread
        // across buckets.
        let mut z = self.state;
        z ^= z >> 30;
        z = z.wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z ^= z >> 27;
        z = z.wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Fallback for non-integer keys: FNV-1a folded into the state.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        self.state = (self.state.rotate_left(5) ^ h).wrapping_mul(MIX);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.write_u64(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.state = (self.state.rotate_left(5) ^ i).wrapping_mul(MIX);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.write_u64(i as u64);
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.write_u64(u64::from(i));
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.write_u64(u64::from(i));
    }
}

/// `BuildHasher` for [`IdHasher`].
pub type IdBuildHasher = BuildHasherDefault<IdHasher>;

/// `HashMap` keyed by interned handles (or other id-shaped keys) using
/// the fast id hasher. Construct with `IdHashMap::default()`.
pub type IdHashMap<K, V> = HashMap<K, V, IdBuildHasher>;

/// `HashSet` companion to [`IdHashMap`].
pub type IdHashSet<K> = HashSet<K, IdBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn intern_dedups_and_round_trips() {
        let a = Istr::intern("alpha");
        let b = Istr::intern("alpha");
        let c = Istr::intern("beta");
        assert_eq!(a, b);
        assert_eq!(a.id(), b.id());
        assert_ne!(a, c);
        assert_eq!(a.as_str(), "alpha");
        assert_eq!(&*c, "beta");
        assert_eq!(format!("{a}"), "alpha");
        assert_eq!(format!("{a:?}"), "\"alpha\"");
    }

    #[test]
    fn ord_is_string_order_not_id_order() {
        // Intern in reverse lexicographic order so id order and string
        // order disagree; Ord must follow the strings.
        let z = Istr::intern("zzz-ord-test");
        let a = Istr::intern("aaa-ord-test");
        assert!(z.id() < a.id());
        assert!(a < z);
        let set: BTreeSet<Istr> = [z, a].into_iter().collect();
        let in_order: Vec<&str> = set.iter().map(|k| k.as_str()).collect();
        assert_eq!(in_order, vec!["aaa-ord-test", "zzz-ord-test"]);
    }

    #[test]
    fn compose_tables_memoise() {
        let b = Istr::intern("bucket");
        let k = Istr::intern("object");
        let first = compose_slash(b, k);
        let second = compose_slash(b, k);
        assert_eq!(first, second);
        assert_eq!(first.as_str(), "bucket/object");
        let c0 = compose_chunk(first, 0);
        assert_eq!(c0.as_str(), "bucket/object#chunk0");
        assert_eq!(compose_chunk(first, 0), c0);
        assert_ne!(compose_chunk(first, 1), c0);
    }

    #[test]
    fn id_hash_map_basic() {
        let mut m: IdHashMap<Istr, u64> = IdHashMap::default();
        for i in 0..1000 {
            m.insert(Istr::intern(&format!("key-{i}")), i);
        }
        for i in 0..1000 {
            assert_eq!(m[&Istr::intern(&format!("key-{i}"))], i);
        }
    }

    #[test]
    fn cross_thread_ids_agree() {
        // The collect is load-bearing: all four threads must be spawned
        // (and race the interner) before any is joined.
        #[allow(clippy::needless_collect)]
        let handles: Vec<_> = (0..4)
            .map(|_| {
                std::thread::spawn(|| {
                    (0..64)
                        .map(|i| Istr::intern(&format!("thread-shared-{i}")).id())
                        .collect::<Vec<u32>>()
                })
            })
            .collect();
        let ids: Vec<Vec<u32>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        for w in ids.windows(2) {
            assert_eq!(w[0], w[1]);
        }
    }
}
