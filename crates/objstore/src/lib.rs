//! Remote shared data store (RSDS) substrate: a Swift/S3-model object store
//! plus a Redis-model in-memory object cache (IMOC) baseline.
//!
//! The paper's functions follow the Extract-Transform-Load pattern against a
//! remote object store (§1); OFC interposes a cache between the two. This
//! crate provides the storage side:
//!
//! * [`store::ObjectStore`] — buckets, versioned objects, metadata tags
//!   (where extracted ML features live, §5.1.2), **shadow objects**
//!   (empty-payload placeholders carrying two version numbers, §6.2), and
//!   read/write **webhooks** for external-client consistency,
//! * [`imoc::Imoc`] — the Redis-like cache used by the `OWK-Redis` baseline
//!   of §7.2,
//! * [`latency::LatencyModel`] — first-order per-operation cost models with
//!   presets calibrated to the paper's measurements.
//!
//! All operations are *time-functional*: they return the operation latency
//! along with the result; the caller advances virtual time.

pub mod imoc;
pub mod latency;
pub mod store;

use bytes::Bytes;
use ofc_intern::Istr;
use std::fmt;

/// Identifier of an object: `(bucket, key)`.
///
/// `Copy` (interned string handles) and usable as a map key across the
/// whole stack — the cache, the store, and the FaaS argument parser all pass
/// these around. Equality and hashing resolve through the intern ids;
/// ordering follows the resolved strings, matching the previous
/// `Arc<str>`-based representation byte for byte.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ObjectId {
    /// Bucket (Swift container) name.
    pub bucket: Istr,
    /// Object key within the bucket.
    pub key: Istr,
}

impl ObjectId {
    /// Creates an id from bucket and key names.
    pub fn new(bucket: impl AsRef<str>, key: impl AsRef<str>) -> Self {
        ObjectId {
            bucket: Istr::intern(bucket.as_ref()),
            key: Istr::intern(key.as_ref()),
        }
    }

    /// The interned `bucket/key` path — the RAMCloud-layer cache key.
    ///
    /// Memoised under the (bucket, key) id pair, so steady-state
    /// derivation allocates nothing.
    pub fn path(&self) -> Istr {
        ofc_intern::compose_slash(self.bucket, self.key)
    }
}

impl fmt::Display for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.bucket, self.key)
    }
}

/// An object payload.
///
/// Simulated workloads carry [`Payload::Synthetic`] (a byte count only) so a
/// 30-minute macro experiment does not allocate gigabytes; real byte
/// payloads are supported for API users and tests.
#[derive(Debug, Clone, PartialEq)]
pub enum Payload {
    /// A payload of the given size whose bytes are not materialized.
    Synthetic(u64),
    /// Actual bytes.
    Data(Bytes),
}

impl Payload {
    /// Payload size in bytes.
    pub fn len(&self) -> u64 {
        match self {
            Payload::Synthetic(n) => *n,
            Payload::Data(b) => b.len() as u64,
        }
    }

    /// Whether the payload is empty (a shadow placeholder has no payload at
    /// all and is represented separately).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The real bytes, if materialized.
    pub fn bytes(&self) -> Option<&Bytes> {
        match self {
            Payload::Synthetic(_) => None,
            Payload::Data(b) => Some(b),
        }
    }
}

impl From<Bytes> for Payload {
    fn from(b: Bytes) -> Self {
        Payload::Data(b)
    }
}

impl From<&[u8]> for Payload {
    fn from(b: &[u8]) -> Self {
        Payload::Data(Bytes::copy_from_slice(b))
    }
}

/// Errors returned by the storage substrates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// The object (or bucket) does not exist.
    NotFound(ObjectId),
    /// A shadow fulfillment arrived out of order or for a stale version.
    VersionConflict {
        /// The object concerned.
        id: ObjectId,
        /// Version the caller tried to act on.
        attempted: u64,
        /// Current latest version.
        current: u64,
    },
    /// The object's payload is not yet persisted (only its shadow exists)
    /// and the store was asked for strict reads.
    ShadowOnly(ObjectId),
    /// The store/cache is out of capacity.
    CapacityExceeded {
        /// Bytes requested.
        requested: u64,
        /// Bytes available.
        available: u64,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::NotFound(id) => write!(f, "object {id} not found"),
            StoreError::VersionConflict {
                id,
                attempted,
                current,
            } => write!(
                f,
                "version conflict on {id}: attempted {attempted}, current {current}"
            ),
            StoreError::ShadowOnly(id) => {
                write!(f, "object {id} has an unfulfilled shadow (payload pending)")
            }
            StoreError::CapacityExceeded {
                requested,
                available,
            } => write!(
                f,
                "capacity exceeded: requested {requested} B, available {available} B"
            ),
        }
    }
}

impl std::error::Error for StoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn object_id_display_and_eq() {
        let a = ObjectId::new("imgs", "cat.png");
        let b = ObjectId::new("imgs", "cat.png");
        assert_eq!(a, b);
        assert_eq!(a.to_string(), "imgs/cat.png");
    }

    #[test]
    fn payload_lengths() {
        assert_eq!(Payload::Synthetic(42).len(), 42);
        assert_eq!(Payload::from(&b"abc"[..]).len(), 3);
        assert!(Payload::Synthetic(0).is_empty());
        assert!(Payload::from(&b"xy"[..]).bytes().is_some());
        assert!(Payload::Synthetic(9).bytes().is_none());
    }

    #[test]
    fn error_messages_are_informative() {
        let id = ObjectId::new("b", "k");
        let e = StoreError::VersionConflict {
            id,
            attempted: 3,
            current: 5,
        };
        let msg = e.to_string();
        assert!(msg.contains("b/k") && msg.contains('3') && msg.contains('5'));
        assert!(StoreError::NotFound(id).to_string().contains("not found"));
    }
}
