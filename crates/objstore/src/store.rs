//! The Swift-model remote shared data store (RSDS).
//!
//! Implements the storage-side mechanisms OFC relies on (§6.2):
//!
//! * **versioned objects** carrying two version numbers — `version` (latest
//!   logical version) and `persisted_version` (latest version whose payload
//!   the store actually holds). A gap between the two is a **shadow
//!   object**: an empty-payload placeholder created synchronously on the
//!   write path while the data payload follows asynchronously via a
//!   persistor function,
//! * **in-order fulfillment** — persistors may only fill version
//!   `persisted_version + 1`, which enforces the paper's requirement that
//!   successive updates propagate in the correct order,
//! * **metadata tags** — extracted ML features are stored alongside objects
//!   at creation time (§5.1.2),
//! * **write observers** — the interposition hook the paper assumes from the
//!   storage system (§3): OFC registers a webhook that invalidates cached
//!   copies when an external client writes directly to the store.
//!
//! Operations return `(result, Duration)`; the caller charges the duration
//! to virtual time.

use crate::latency::LatencyModel;
use crate::{ObjectId, Payload, StoreError};
use ofc_intern::{IdHashMap, Istr};
use std::collections::hash_map::Entry;
use std::collections::{BTreeSet, HashMap};
use std::time::Duration;

/// Metadata of a stored object.
#[derive(Debug, Clone)]
pub struct ObjectMeta {
    /// Latest logical version (bumped by every write, shadow or full).
    pub version: u64,
    /// Latest version whose payload is persisted here.
    pub persisted_version: u64,
    /// Size in bytes of the *latest* version (announced by shadows).
    pub size: u64,
    /// Free-form metadata tags (feature vectors, content type, …).
    pub tags: HashMap<String, String>,
}

impl ObjectMeta {
    /// Whether the latest version's payload is still pending (shadow state).
    pub fn is_shadow(&self) -> bool {
        self.persisted_version < self.version
    }
}

#[derive(Debug, Clone)]
struct StoredObject {
    meta: ObjectMeta,
    /// Payload of `persisted_version` (absent before the first fulfillment).
    payload: Option<Payload>,
}

/// Called after any write-path mutation: `(id, new_version, external)`.
///
/// `external` is true for writes that did not come through the FaaS/cache
/// path — the cache must invalidate its copy (§6.2 webhooks).
pub type WriteObserver = Box<dyn FnMut(&ObjectId, u64, bool)>;

/// Operation counters for telemetry and experiment reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreCounters {
    /// Successful GETs.
    pub gets: u64,
    /// Full-payload PUTs.
    pub puts: u64,
    /// Shadow (empty-payload) PUTs.
    pub shadow_puts: u64,
    /// Shadow fulfillments by persistors.
    pub fulfillments: u64,
    /// DELETEs.
    pub deletes: u64,
    /// Payload bytes read.
    pub bytes_read: u64,
    /// Payload bytes written.
    pub bytes_written: u64,
}

/// The object store. See the module docs for semantics.
pub struct ObjectStore {
    latency: LatencyModel,
    objects: IdHashMap<ObjectId, StoredObject>,
    keys_by_bucket: IdHashMap<Istr, BTreeSet<Istr>>,
    observers: Vec<WriteObserver>,
    counters: StoreCounters,
}

impl std::fmt::Debug for ObjectStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ObjectStore")
            .field("objects", &self.objects.len())
            .field("counters", &self.counters)
            .finish()
    }
}

impl ObjectStore {
    /// Creates an empty store with the given latency model.
    pub fn new(latency: LatencyModel) -> Self {
        ObjectStore {
            latency,
            objects: IdHashMap::default(),
            keys_by_bucket: IdHashMap::default(),
            observers: Vec::new(),
            counters: StoreCounters::default(),
        }
    }

    /// A store with Swift's latency preset.
    pub fn swift() -> Self {
        ObjectStore::new(LatencyModel::swift())
    }

    /// Registers a write observer (the webhook interposition point).
    pub fn add_write_observer(&mut self, obs: WriteObserver) {
        self.observers.push(obs);
    }

    /// Operation counters so far.
    pub fn counters(&self) -> StoreCounters {
        self.counters
    }

    /// The latency model in use.
    pub fn latency(&self) -> &LatencyModel {
        &self.latency
    }

    /// Number of stored objects (shadows included).
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    fn notify(&mut self, id: &ObjectId, version: u64, external: bool) {
        let mut observers = std::mem::take(&mut self.observers);
        for obs in &mut observers {
            obs(id, version, external);
        }
        self.observers = observers;
    }

    fn index_insert(&mut self, id: &ObjectId) {
        self.keys_by_bucket
            .entry(id.bucket)
            .or_default()
            .insert(id.key);
    }

    /// Writes a full object (create or update), bumping both versions.
    ///
    /// `external` marks writes from non-FaaS clients, which trigger cache
    /// invalidation through the write observers.
    pub fn put(
        &mut self,
        id: &ObjectId,
        payload: Payload,
        tags: HashMap<String, String>,
        external: bool,
    ) -> (u64, Duration) {
        let size = payload.len();
        let latency = self.latency.write(size.max(1));
        let version = match self.objects.entry(*id) {
            Entry::Occupied(mut e) => {
                let obj = e.get_mut();
                obj.meta.version += 1;
                obj.meta.persisted_version = obj.meta.version;
                obj.meta.size = size;
                obj.meta.tags.extend(tags);
                obj.payload = Some(payload);
                obj.meta.version
            }
            Entry::Vacant(e) => {
                e.insert(StoredObject {
                    meta: ObjectMeta {
                        version: 1,
                        persisted_version: 1,
                        size,
                        tags,
                    },
                    payload: Some(payload),
                });
                1
            }
        };
        self.index_insert(id);
        self.counters.puts += 1;
        self.counters.bytes_written += size;
        self.notify(id, version, external);
        (version, latency)
    }

    /// Creates a shadow: synchronously registers a new version whose payload
    /// (`announced_size` bytes) will arrive later via a persistor.
    ///
    /// Returns the new version number. The latency is the Swift empty-payload
    /// fast path (~11 ms, §7.2.1), independent of `announced_size`.
    pub fn put_shadow(&mut self, id: &ObjectId, announced_size: u64) -> (u64, Duration) {
        let latency = self.latency.write(0);
        let version = match self.objects.entry(*id) {
            Entry::Occupied(mut e) => {
                let obj = e.get_mut();
                obj.meta.version += 1;
                obj.meta.size = announced_size;
                obj.meta.version
            }
            Entry::Vacant(e) => {
                e.insert(StoredObject {
                    meta: ObjectMeta {
                        version: 1,
                        persisted_version: 0,
                        size: announced_size,
                        tags: HashMap::new(),
                    },
                    payload: None,
                });
                1
            }
        };
        self.index_insert(id);
        self.counters.shadow_puts += 1;
        self.notify(id, version, false);
        (version, latency)
    }

    /// Fulfills a shadow: a persistor delivers the payload of `version`.
    ///
    /// Fulfillments must arrive in version order (`persisted_version + 1`);
    /// anything else is a [`StoreError::VersionConflict`], which is how the
    /// store enforces the paper's ordered-propagation requirement.
    pub fn fulfill_shadow(
        &mut self,
        id: &ObjectId,
        version: u64,
        payload: Payload,
    ) -> (Result<(), StoreError>, Duration) {
        let size = payload.len();
        let latency = self.latency.write(size.max(1));
        let Some(obj) = self.objects.get_mut(id) else {
            return (Err(StoreError::NotFound(*id)), self.latency.meta());
        };
        if version != obj.meta.persisted_version + 1 || version > obj.meta.version {
            let current = obj.meta.persisted_version;
            return (
                Err(StoreError::VersionConflict {
                    id: *id,
                    attempted: version,
                    current,
                }),
                self.latency.meta(),
            );
        }
        obj.meta.persisted_version = version;
        obj.payload = Some(payload);
        self.counters.fulfillments += 1;
        self.counters.bytes_written += size;
        (Ok(()), latency)
    }

    /// Reads the latest persisted payload.
    ///
    /// Fails with [`StoreError::ShadowOnly`] when the latest version's
    /// payload has not been persisted yet — external readers must then wait
    /// for (and boost) the persistor, which the webhook layer in `ofc-core`
    /// arranges.
    pub fn get(&mut self, id: &ObjectId) -> (Result<(ObjectMeta, Payload), StoreError>, Duration) {
        match self.objects.get(id) {
            None => (Err(StoreError::NotFound(*id)), self.latency.meta()),
            Some(obj) if obj.meta.is_shadow() || obj.payload.is_none() => {
                (Err(StoreError::ShadowOnly(*id)), self.latency.meta())
            }
            Some(obj) => {
                let payload = obj.payload.clone().expect("checked above");
                let meta = obj.meta.clone();
                self.counters.gets += 1;
                self.counters.bytes_read += payload.len();
                let latency = self.latency.read(payload.len());
                (Ok((meta, payload)), latency)
            }
        }
    }

    /// Reads object metadata only (HEAD).
    pub fn head(&self, id: &ObjectId) -> (Result<ObjectMeta, StoreError>, Duration) {
        let res = self
            .objects
            .get(id)
            .map(|o| o.meta.clone())
            .ok_or(StoreError::NotFound(*id));
        (res, self.latency.meta())
    }

    /// Updates (merges) the metadata tags of an object.
    pub fn set_tags(
        &mut self,
        id: &ObjectId,
        tags: HashMap<String, String>,
    ) -> (Result<(), StoreError>, Duration) {
        let res = match self.objects.get_mut(id) {
            Some(obj) => {
                obj.meta.tags.extend(tags);
                Ok(())
            }
            None => Err(StoreError::NotFound(*id)),
        };
        (res, self.latency.meta())
    }

    /// Deletes an object (shadow or persisted).
    pub fn delete(&mut self, id: &ObjectId) -> (Result<(), StoreError>, Duration) {
        let res = if self.objects.remove(id).is_some() {
            if let Some(keys) = self.keys_by_bucket.get_mut(&id.bucket) {
                keys.remove(&id.key);
            }
            self.counters.deletes += 1;
            Ok(())
        } else {
            Err(StoreError::NotFound(*id))
        };
        (res, self.latency.delete())
    }

    /// Lists the keys of a bucket in lexical order.
    pub fn list_bucket(&self, bucket: &str) -> (Vec<ObjectId>, Duration) {
        let bucket = Istr::intern(bucket);
        let keys = self
            .keys_by_bucket
            .get(&bucket)
            .map(|set| set.iter().map(|&key| ObjectId { bucket, key }).collect())
            .unwrap_or_default();
        (keys, self.latency.meta())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    fn store() -> ObjectStore {
        ObjectStore::new(LatencyModel::instant())
    }

    fn oid(key: &str) -> ObjectId {
        ObjectId::new("bkt", key)
    }

    #[test]
    fn put_then_get_round_trips() {
        let mut s = store();
        let (v, _) = s.put(&oid("a"), Payload::Synthetic(100), HashMap::new(), false);
        assert_eq!(v, 1);
        let (res, _) = s.get(&oid("a"));
        let (meta, payload) = res.unwrap();
        assert_eq!(meta.version, 1);
        assert_eq!(meta.persisted_version, 1);
        assert_eq!(payload.len(), 100);
    }

    #[test]
    fn get_missing_is_not_found() {
        let mut s = store();
        let (res, _) = s.get(&oid("nope"));
        assert!(matches!(res, Err(StoreError::NotFound(_))));
    }

    #[test]
    fn versions_bump_on_overwrite() {
        let mut s = store();
        s.put(&oid("a"), Payload::Synthetic(1), HashMap::new(), false);
        let (v, _) = s.put(&oid("a"), Payload::Synthetic(2), HashMap::new(), false);
        assert_eq!(v, 2);
        let (meta, _) = s.head(&oid("a")).0.map(|m| (m.version, ())).unwrap();
        assert_eq!(meta, 2);
    }

    #[test]
    fn shadow_lifecycle() {
        let mut s = store();
        let (v, _) = s.put_shadow(&oid("a"), 500);
        assert_eq!(v, 1);
        // Shadow pending: strict reads fail.
        assert!(matches!(s.get(&oid("a")).0, Err(StoreError::ShadowOnly(_))));
        let meta = s.head(&oid("a")).0.unwrap();
        assert!(meta.is_shadow());
        assert_eq!(meta.size, 500);
        // Persistor fulfills.
        let (res, _) = s.fulfill_shadow(&oid("a"), 1, Payload::Synthetic(500));
        res.unwrap();
        let (meta, payload) = s.get(&oid("a")).0.unwrap();
        assert!(!meta.is_shadow());
        assert_eq!(payload.len(), 500);
    }

    #[test]
    fn shadow_fulfillment_must_be_in_order() {
        let mut s = store();
        s.put(&oid("a"), Payload::Synthetic(1), HashMap::new(), false);
        s.put_shadow(&oid("a"), 10); // v2 pending
        s.put_shadow(&oid("a"), 20); // v3 pending
                                     // v3 before v2 is rejected.
        let (res, _) = s.fulfill_shadow(&oid("a"), 3, Payload::Synthetic(20));
        assert!(matches!(res, Err(StoreError::VersionConflict { .. })));
        // In order works.
        s.fulfill_shadow(&oid("a"), 2, Payload::Synthetic(10))
            .0
            .unwrap();
        s.fulfill_shadow(&oid("a"), 3, Payload::Synthetic(20))
            .0
            .unwrap();
        let (meta, payload) = s.get(&oid("a")).0.unwrap();
        assert_eq!(meta.persisted_version, 3);
        assert_eq!(payload.len(), 20);
    }

    #[test]
    fn stale_fulfillment_rejected() {
        let mut s = store();
        s.put(&oid("a"), Payload::Synthetic(1), HashMap::new(), false);
        let (res, _) = s.fulfill_shadow(&oid("a"), 1, Payload::Synthetic(1));
        assert!(matches!(res, Err(StoreError::VersionConflict { .. })));
    }

    #[test]
    fn write_observers_fire_with_external_flag() {
        let mut s = store();
        let seen: Rc<RefCell<Vec<(String, u64, bool)>>> = Rc::default();
        let sink = Rc::clone(&seen);
        s.add_write_observer(Box::new(move |id, v, ext| {
            sink.borrow_mut().push((id.to_string(), v, ext));
        }));
        s.put(&oid("a"), Payload::Synthetic(1), HashMap::new(), false);
        s.put(&oid("a"), Payload::Synthetic(2), HashMap::new(), true);
        s.put_shadow(&oid("a"), 3);
        let seen = seen.borrow();
        assert_eq!(seen.len(), 3);
        assert_eq!(seen[0], ("bkt/a".to_string(), 1, false));
        assert_eq!(seen[1], ("bkt/a".to_string(), 2, true));
        assert_eq!(seen[2], ("bkt/a".to_string(), 3, false));
    }

    #[test]
    fn tags_merge() {
        let mut s = store();
        let mut t1 = HashMap::new();
        t1.insert("width".to_string(), "640".to_string());
        s.put(&oid("a"), Payload::Synthetic(1), t1, false);
        let mut t2 = HashMap::new();
        t2.insert("height".to_string(), "480".to_string());
        s.set_tags(&oid("a"), t2).0.unwrap();
        let meta = s.head(&oid("a")).0.unwrap();
        assert_eq!(meta.tags["width"], "640");
        assert_eq!(meta.tags["height"], "480");
    }

    #[test]
    fn delete_removes_and_updates_listing() {
        let mut s = store();
        s.put(&oid("a"), Payload::Synthetic(1), HashMap::new(), false);
        s.put(&oid("b"), Payload::Synthetic(1), HashMap::new(), false);
        assert_eq!(s.list_bucket("bkt").0.len(), 2);
        s.delete(&oid("a")).0.unwrap();
        let (keys, _) = s.list_bucket("bkt");
        assert_eq!(keys.len(), 1);
        assert_eq!(&*keys[0].key, "b");
        assert!(matches!(
            s.delete(&oid("a")).0,
            Err(StoreError::NotFound(_))
        ));
    }

    #[test]
    fn counters_track_operations() {
        let mut s = store();
        s.put(&oid("a"), Payload::Synthetic(100), HashMap::new(), false);
        s.put_shadow(&oid("b"), 50);
        s.fulfill_shadow(&oid("b"), 1, Payload::Synthetic(50))
            .0
            .unwrap();
        s.get(&oid("a")).0.unwrap();
        s.delete(&oid("a")).0.unwrap();
        let c = s.counters();
        assert_eq!(c.puts, 1);
        assert_eq!(c.shadow_puts, 1);
        assert_eq!(c.fulfillments, 1);
        assert_eq!(c.gets, 1);
        assert_eq!(c.deletes, 1);
        assert_eq!(c.bytes_written, 150);
        assert_eq!(c.bytes_read, 100);
    }

    #[test]
    fn latency_charged_by_size() {
        let mut s = ObjectStore::swift();
        let (_, small) = s.put(&oid("s"), Payload::Synthetic(1_000), HashMap::new(), false);
        let (_, big) = s.put(
            &oid("b"),
            Payload::Synthetic(10_000_000),
            HashMap::new(),
            false,
        );
        assert!(big > small);
        let (_, shadow) = s.put_shadow(&oid("sh"), 10_000_000);
        assert_eq!(shadow, Duration::from_millis(11));
    }
}
