//! Redis-model in-memory object cache (IMOC): the `OWK-Redis` baseline.
//!
//! §2.2.3 motivates OFC by comparing the RSDS against "an in-memory object
//! cache (IMOC) such as Redis between the cloud functions and the RSDS".
//! This is that baseline: a flat key-value cache with sub-millisecond
//! latency, explicit tenant-provisioned capacity and LRU eviction — i.e.,
//! exactly the dedicated resource OFC is designed to make unnecessary.

use crate::latency::LatencyModel;
use crate::{ObjectId, Payload, StoreError};
use ofc_intern::IdHashMap;
use std::time::Duration;

/// A Redis-like cache entry.
#[derive(Debug, Clone)]
struct Entry {
    payload: Payload,
    /// LRU clock value of the last access.
    last_used: u64,
}

/// The IMOC. Capacity-bounded, LRU-evicting, latency-modelled.
#[derive(Debug)]
pub struct Imoc {
    latency: LatencyModel,
    capacity: u64,
    used: u64,
    clock: u64,
    entries: IdHashMap<ObjectId, Entry>,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl Imoc {
    /// Creates a cache with the given capacity in bytes.
    pub fn new(latency: LatencyModel, capacity: u64) -> Self {
        Imoc {
            latency,
            capacity,
            used: 0,
            clock: 0,
            entries: IdHashMap::default(),
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// A Redis-preset cache of `capacity` bytes.
    pub fn redis(capacity: u64) -> Self {
        Imoc::new(LatencyModel::redis(), capacity)
    }

    /// Bytes currently stored.
    pub fn used(&self) -> u64 {
        self.used
    }

    /// Configured capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// `(hits, misses, evictions)` counters.
    pub fn counters(&self) -> (u64, u64, u64) {
        (self.hits, self.misses, self.evictions)
    }

    /// Number of cached objects.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Reads an object; a miss is a [`StoreError::NotFound`].
    pub fn get(&mut self, id: &ObjectId) -> (Result<Payload, StoreError>, Duration) {
        self.clock += 1;
        match self.entries.get_mut(id) {
            Some(e) => {
                e.last_used = self.clock;
                self.hits += 1;
                let p = e.payload.clone();
                let latency = self.latency.read(p.len());
                (Ok(p), latency)
            }
            None => {
                self.misses += 1;
                (Err(StoreError::NotFound(*id)), self.latency.meta())
            }
        }
    }

    /// Writes an object, evicting LRU entries to make room.
    ///
    /// Fails with [`StoreError::CapacityExceeded`] if the object alone is
    /// larger than the whole cache.
    pub fn put(&mut self, id: &ObjectId, payload: Payload) -> (Result<(), StoreError>, Duration) {
        let size = payload.len();
        if size > self.capacity {
            return (
                Err(StoreError::CapacityExceeded {
                    requested: size,
                    available: self.capacity,
                }),
                self.latency.meta(),
            );
        }
        // Replace any existing entry first so its size is reclaimed.
        if let Some(old) = self.entries.remove(id) {
            self.used -= old.payload.len();
        }
        while self.used + size > self.capacity {
            let victim = self
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| *k)
                .expect("used > 0 implies entries exist");
            let evicted = self.entries.remove(&victim).expect("victim exists");
            self.used -= evicted.payload.len();
            self.evictions += 1;
        }
        self.clock += 1;
        self.used += size;
        let latency = self.latency.write(size.max(1));
        self.entries.insert(
            *id,
            Entry {
                payload,
                last_used: self.clock,
            },
        );
        (Ok(()), latency)
    }

    /// Removes an object if present; reports whether it was.
    pub fn remove(&mut self, id: &ObjectId) -> (bool, Duration) {
        match self.entries.remove(id) {
            Some(e) => {
                self.used -= e.payload.len();
                (true, self.latency.delete())
            }
            None => (false, self.latency.meta()),
        }
    }

    /// Whether an object is cached (does not touch LRU state).
    pub fn contains(&self, id: &ObjectId) -> bool {
        self.entries.contains_key(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn imoc(capacity: u64) -> Imoc {
        Imoc::new(LatencyModel::instant(), capacity)
    }

    fn oid(key: &str) -> ObjectId {
        ObjectId::new("b", key)
    }

    #[test]
    fn put_get_hit_and_miss() {
        let mut c = imoc(1000);
        c.put(&oid("a"), Payload::Synthetic(10)).0.unwrap();
        assert_eq!(c.get(&oid("a")).0.unwrap().len(), 10);
        assert!(c.get(&oid("zz")).0.is_err());
        assert_eq!(c.counters(), (1, 1, 0));
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut c = imoc(100);
        c.put(&oid("a"), Payload::Synthetic(40)).0.unwrap();
        c.put(&oid("b"), Payload::Synthetic(40)).0.unwrap();
        // Touch "a" so "b" becomes LRU.
        c.get(&oid("a")).0.unwrap();
        c.put(&oid("c"), Payload::Synthetic(40)).0.unwrap();
        assert!(c.contains(&oid("a")));
        assert!(!c.contains(&oid("b")));
        assert!(c.contains(&oid("c")));
        assert_eq!(c.counters().2, 1);
    }

    #[test]
    fn oversized_object_rejected() {
        let mut c = imoc(10);
        let (res, _) = c.put(&oid("big"), Payload::Synthetic(11));
        assert!(matches!(res, Err(StoreError::CapacityExceeded { .. })));
        assert_eq!(c.used(), 0);
    }

    #[test]
    fn replacement_reclaims_old_size() {
        let mut c = imoc(100);
        c.put(&oid("a"), Payload::Synthetic(80)).0.unwrap();
        c.put(&oid("a"), Payload::Synthetic(50)).0.unwrap();
        assert_eq!(c.used(), 50);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn remove_frees_space() {
        let mut c = imoc(100);
        c.put(&oid("a"), Payload::Synthetic(60)).0.unwrap();
        assert!(c.remove(&oid("a")).0);
        assert_eq!(c.used(), 0);
        assert!(!c.remove(&oid("a")).0);
    }

    #[test]
    fn eviction_cascade_until_fit() {
        let mut c = imoc(100);
        for i in 0..5 {
            c.put(&oid(&format!("k{i}")), Payload::Synthetic(20))
                .0
                .unwrap();
        }
        c.put(&oid("big"), Payload::Synthetic(90)).0.unwrap();
        assert!(c.contains(&oid("big")));
        assert!(c.used() <= 100);
        assert_eq!(c.counters().2, 5);
    }
}
