//! Per-operation latency models for the storage substrates.
//!
//! Each model is first-order: `base + size / bandwidth` per operation class.
//! The presets are calibrated to the measurements reported in the paper
//! (§7.2.1 and Figures 3/7); see `DESIGN.md` §5 for the constant inventory.

use std::time::Duration;

/// Latency model of a storage service.
#[derive(Debug, Clone)]
pub struct LatencyModel {
    /// Base latency of a data read (GET).
    pub read_base: Duration,
    /// Read bandwidth in bytes per second.
    pub read_bw: f64,
    /// Base latency of a data write (PUT with payload).
    pub write_base: Duration,
    /// Write bandwidth in bytes per second.
    pub write_bw: f64,
    /// Latency of a metadata-only operation: HEAD, empty-payload PUT
    /// (shadow creation — measured at ~11 ms on Swift, §7.2.1), tag update.
    pub meta_base: Duration,
    /// Latency of a DELETE.
    pub delete_base: Duration,
}

impl LatencyModel {
    /// Latency of reading an object of `size` bytes.
    pub fn read(&self, size: u64) -> Duration {
        self.read_base + Self::xfer(size, self.read_bw)
    }

    /// Latency of writing an object of `size` bytes.
    ///
    /// A zero-byte write is a metadata operation (shadow-object creation
    /// takes the Swift fast path in the paper).
    pub fn write(&self, size: u64) -> Duration {
        if size == 0 {
            self.meta_base
        } else {
            self.write_base + Self::xfer(size, self.write_bw)
        }
    }

    /// Latency of a metadata operation (HEAD / tag read / tag write).
    pub fn meta(&self) -> Duration {
        self.meta_base
    }

    /// Latency of a delete.
    pub fn delete(&self) -> Duration {
        self.delete_base
    }

    fn xfer(size: u64, bw: f64) -> Duration {
        Duration::from_secs_f64(size as f64 / bw)
    }

    /// OpenStack Swift over a datacenter network, as measured in §7.2.1:
    /// E-phase base ≈ 42 ms and L-phase base ≈ 110 ms for small objects
    /// (Swift PUTs pay quorum replication), shadow creation ≈ 11 ms.
    pub fn swift() -> Self {
        LatencyModel {
            read_base: Duration::from_millis(42),
            read_bw: 40e6,
            write_base: Duration::from_millis(108),
            write_bw: 28e6,
            meta_base: Duration::from_millis(11),
            delete_base: Duration::from_millis(20),
        }
    }

    /// AWS S3 as observed from EC2 in Figure 3 (slightly slower bases than
    /// the local Swift deployment).
    pub fn s3() -> Self {
        LatencyModel {
            read_base: Duration::from_millis(55),
            read_bw: 80e6,
            write_base: Duration::from_millis(120),
            write_bw: 40e6,
            meta_base: Duration::from_millis(15),
            delete_base: Duration::from_millis(25),
        }
    }

    /// ElastiCache-style Redis over the same network (the `OWK-Redis`
    /// best-case baseline of §7.2): sub-millisecond base, wire-speed bulk.
    pub fn redis() -> Self {
        LatencyModel {
            read_base: Duration::from_micros(350),
            read_bw: 1.0e9,
            write_base: Duration::from_micros(400),
            write_bw: 1.0e9,
            meta_base: Duration::from_micros(200),
            delete_base: Duration::from_micros(200),
        }
    }

    /// An instantaneous model (for unit tests that ignore time).
    pub fn instant() -> Self {
        LatencyModel {
            read_base: Duration::ZERO,
            read_bw: f64::INFINITY,
            write_base: Duration::ZERO,
            write_bw: f64::INFINITY,
            meta_base: Duration::ZERO,
            delete_base: Duration::ZERO,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_scales_with_size() {
        let m = LatencyModel {
            read_base: Duration::from_millis(10),
            read_bw: 1e6,
            ..LatencyModel::instant()
        };
        assert_eq!(m.read(0), Duration::from_millis(10));
        assert_eq!(m.read(1_000_000), Duration::from_millis(1010));
    }

    #[test]
    fn empty_write_takes_meta_path() {
        let m = LatencyModel::swift();
        assert_eq!(m.write(0), Duration::from_millis(11));
        assert!(m.write(1) >= Duration::from_millis(108));
    }

    #[test]
    fn presets_are_ordered_sensibly() {
        // Redis must beat Swift on both paths; S3 is the slowest reader.
        let (sw, s3, rd) = (
            LatencyModel::swift(),
            LatencyModel::s3(),
            LatencyModel::redis(),
        );
        let size = 128 * 1024;
        assert!(rd.read(size) < sw.read(size));
        assert!(rd.write(size) < sw.write(size));
        assert!(sw.read(size) < s3.read(size));
    }

    #[test]
    fn instant_is_zero() {
        let m = LatencyModel::instant();
        assert_eq!(m.read(1 << 30), Duration::ZERO);
        assert_eq!(m.write(1 << 30), Duration::ZERO);
    }
}
