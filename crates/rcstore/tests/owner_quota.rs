//! Property: per-tenant quota accounting is conserved. For any schedule
//! of writes, reads, evictions, deletions, migrations, crashes, and
//! restarts, the per-owner live-byte ledger must satisfy, on every node
//! and at every intermediate state:
//!
//! * `Σ owner_usage == log.live_bytes()` (nothing leaks, nothing is
//!   double-charged),
//! * each owner's charge equals a full recount over that node's masters,
//! * `owner_victims` returns exactly that owner's masters in LRU order —
//!   never another tenant's object.
//!
//! The pinned `regression_*` tests replay hand-reduced schedules for the
//! paths that historically bend ledgers: overwrite-resize, crash wiping a
//! node mid-charge, recovery re-promoting backups, and demotion.

use ofc_rcstore::cluster::Cluster;
use ofc_rcstore::{owner_of, ClusterConfig, Key, Value};
use ofc_simtime::SimTime;
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::time::Duration;

const NODES: usize = 4;
const KEY_POOL: u64 = 16;
const OWNERS: u64 = 5;

#[derive(Debug, Clone)]
enum Op {
    Write {
        k: u64,
        home: usize,
        size: u64,
        dirty: bool,
    },
    Read {
        k: u64,
        from: usize,
    },
    Evict {
        k: u64,
    },
    Delete {
        k: u64,
    },
    Migrate {
        k: u64,
    },
    Crash {
        node: usize,
    },
    Restart {
        node: usize,
    },
    Advance {
        secs: u32,
    },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..KEY_POOL, 0..NODES, 1u64..64 << 10, any::<bool>()).prop_map(
            |(k, home, size, dirty)| Op::Write {
                k,
                home,
                size,
                dirty
            }
        ),
        (0..KEY_POOL, 0..NODES).prop_map(|(k, from)| Op::Read { k, from }),
        (0..KEY_POOL).prop_map(|k| Op::Evict { k }),
        (0..KEY_POOL).prop_map(|k| Op::Delete { k }),
        (0..KEY_POOL).prop_map(|k| Op::Migrate { k }),
        (0..NODES).prop_map(|node| Op::Crash { node }),
        (0..NODES).prop_map(|node| Op::Restart { node }),
        (1..400u32).prop_map(|secs| Op::Advance { secs }),
    ]
}

/// Keys spread over [`OWNERS`] tenant-named buckets, so one owner holds
/// several objects and overwrites cross owners never happen.
fn key(k: u64) -> Key {
    Key::from(format!("t{}/obj{k}", k % OWNERS))
}

fn apply(cluster: &mut Cluster, now: &mut SimTime, op: &Op) {
    match *op {
        Op::Write {
            k,
            home,
            size,
            dirty,
        } => {
            cluster
                .write_with_dirty(home, &key(k), Value::synthetic(size), *now, dirty)
                .result
                .ok();
        }
        Op::Read { k, from } => {
            cluster.read(from, &key(k), *now).result.ok();
        }
        Op::Evict { k } => {
            cluster.evict(&key(k)).result.ok();
        }
        Op::Delete { k } => {
            cluster.delete(&key(k)).result.ok();
        }
        Op::Migrate { k } => {
            cluster.migrate_by_promotion(&key(k), *now).result.ok();
        }
        Op::Crash { node } => {
            if cluster.live_nodes() > 1 {
                cluster.crash_node(node, *now);
            }
        }
        Op::Restart { node } => cluster.restart_node(node, *now),
        Op::Advance { secs } => *now += Duration::from_secs(u64::from(secs)),
    }
}

/// Recounts every charge from the master maps directly — the ledger the
/// O(log n) bookkeeping must always agree with.
fn recount(cluster: &Cluster) -> (Vec<u64>, BTreeMap<Key, u64>) {
    let mut per_node = Vec::new();
    let mut per_owner: BTreeMap<Key, u64> = BTreeMap::new();
    for node in 0..NODES {
        let mut node_total = 0u64;
        for (key, obj) in cluster.node(node).masters() {
            let charge = obj.value.size().max(1);
            node_total += charge;
            *per_owner.entry(owner_of(key)).or_insert(0) += charge;
            assert_eq!(obj.owner, owner_of(key), "stored owner drifted from key");
        }
        per_node.push(node_total);
    }
    (per_node, per_owner)
}

fn check_conserved(cluster: &Cluster) -> Result<(), TestCaseError> {
    let (per_node, per_owner) = recount(cluster);
    for (node, &expect) in per_node.iter().enumerate() {
        let ledger: u64 = cluster.node(node).owner_usages().map(|(_, v)| v).sum();
        prop_assert_eq!(ledger, expect, "node {} ledger != recount", node);
        prop_assert_eq!(
            ledger,
            cluster.node(node).used_bytes(),
            "node {} ledger != live bytes",
            node
        );
    }
    prop_assert_eq!(&cluster.owner_usage(), &per_owner);
    let global: u64 = cluster.owner_usage().values().sum();
    prop_assert_eq!(global, cluster.used_bytes());
    // Victim feeds stay within their owner and in LRU order.
    for owner in per_owner.keys() {
        let victims = cluster.owner_victims(owner, KEY_POOL as usize);
        let mut last = SimTime::ZERO;
        for (vkey, _dirty, size) in &victims {
            prop_assert_eq!(owner_of(vkey), *owner, "victim crossed tenants");
            let stats = cluster.stats_of(vkey).expect("victim is a live master");
            prop_assert!(stats.t_access >= last, "victims out of LRU order");
            prop_assert!(*size >= 1);
            last = stats.t_access;
        }
    }
    Ok(())
}

fn cluster() -> Cluster {
    Cluster::new(ClusterConfig {
        nodes: NODES,
        replication_factor: 2,
        node_pool_bytes: 4 << 20,
        ..ClusterConfig::default()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn owner_ledger_is_conserved(
        ops in prop::collection::vec(op_strategy(), 1..120),
    ) {
        let mut c = cluster();
        let mut now = SimTime::ZERO;
        for op in &ops {
            apply(&mut c, &mut now, op);
            // Conservation holds at every intermediate state, not just at
            // quiescence — check after each mutation.
            check_conserved(&c)?;
        }
    }
}

/// Replays a pinned schedule, checking conservation after every step.
fn replay(ops: &[Op]) {
    let mut c = cluster();
    let mut now = SimTime::ZERO;
    for op in ops {
        apply(&mut c, &mut now, op);
        check_conserved(&c).unwrap();
    }
}

#[test]
fn regression_overwrite_resizes_charge() {
    // Re-writing a key with a different size must replace, not add, its
    // owner charge (the log retires the old entry first).
    replay(&[
        Op::Write {
            k: 3,
            home: 0,
            size: 4096,
            dirty: false,
        },
        Op::Write {
            k: 3,
            home: 0,
            size: 128,
            dirty: true,
        },
        Op::Write {
            k: 3,
            home: 1,
            size: 9000,
            dirty: false,
        },
        Op::Delete { k: 3 },
    ]);
}

#[test]
fn regression_crash_wipes_node_ledger() {
    // A crash clears the node; recovery promotes backups on survivors.
    // Charges must move with the masters and never survive on the corpse.
    replay(&[
        Op::Write {
            k: 0,
            home: 0,
            size: 1 << 10,
            dirty: false,
        },
        Op::Write {
            k: 5,
            home: 0,
            size: 2 << 10,
            dirty: false,
        },
        Op::Write {
            k: 1,
            home: 1,
            size: 3 << 10,
            dirty: true,
        },
        Op::Crash { node: 0 },
        Op::Restart { node: 0 },
        Op::Crash { node: 1 },
    ]);
}

#[test]
fn regression_migration_moves_charge() {
    // Migration-by-promotion re-homes the master: the source node loses
    // the charge, the promoted backup's node gains it.
    replay(&[
        Op::Write {
            k: 2,
            home: 2,
            size: 10_000,
            dirty: false,
        },
        Op::Read { k: 2, from: 3 },
        Op::Migrate { k: 2 },
        Op::Migrate { k: 2 },
        Op::Evict { k: 2 },
    ]);
}

#[test]
fn regression_zero_size_objects_charge_one_byte() {
    // The log charges `size.max(1)`; the owner ledger must match exactly
    // or Σ tenant usage drifts from global usage one byte per object.
    replay(&[
        Op::Write {
            k: 7,
            home: 0,
            size: 1,
            dirty: false,
        },
        Op::Write {
            k: 12,
            home: 1,
            size: 1,
            dirty: false,
        },
        Op::Read { k: 7, from: 2 },
        Op::Delete { k: 12 },
    ]);
}
