//! Property: the eviction-candidate index is a faithful accelerator. For
//! any schedule of writes, reads, evictions, deletions, crashes, and
//! restarts, `Cluster::evict_candidates` must return exactly the victim
//! set a full scan over every master object would select — the index may
//! only change *how many entries the sweep visits*, never *which objects
//! expire*.

use ofc_rcstore::cluster::Cluster;
use ofc_rcstore::node::DEFAULT_COLD_ACCESS_THRESHOLD;
use ofc_rcstore::{ClusterConfig, Key, Value};
use ofc_simtime::SimTime;
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::time::Duration;

const NODES: usize = 4;
const KEY_POOL: u64 = 12;

#[derive(Debug, Clone)]
enum Op {
    Write { k: u64, home: usize, dirty: bool },
    Read { k: u64, from: usize },
    Evict { k: u64 },
    Delete { k: u64 },
    Crash { node: usize },
    Restart { node: usize },
    Advance { secs: u32 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..KEY_POOL, 0..NODES, any::<bool>()).prop_map(|(k, home, dirty)| Op::Write {
            k,
            home,
            dirty
        }),
        (0..KEY_POOL, 0..NODES).prop_map(|(k, from)| Op::Read { k, from }),
        (0..KEY_POOL).prop_map(|k| Op::Evict { k }),
        (0..KEY_POOL).prop_map(|k| Op::Delete { k }),
        (0..NODES).prop_map(|node| Op::Crash { node }),
        (0..NODES).prop_map(|node| Op::Restart { node }),
        (1..400u32).prop_map(|secs| Op::Advance { secs }),
    ]
}

fn key(k: u64) -> Key {
    Key::from(format!("obj{k}"))
}

/// The pre-index janitor: scan every master on every node and apply the
/// §6.3 expiry predicate directly.
fn full_scan_reference(
    cluster: &Cluster,
    now: SimTime,
    min_age: Duration,
    min_idle: Duration,
) -> Vec<(Key, bool)> {
    let mut victims = BTreeMap::new();
    for node in 0..NODES {
        for (key, obj) in cluster.node(node).masters() {
            let cold = obj.stats.n_access < DEFAULT_COLD_ACCESS_THRESHOLD
                && now.saturating_since(obj.stats.created) >= min_age;
            let stale = now.saturating_since(obj.stats.t_access) >= min_idle;
            if cold || stale {
                victims.insert(*key, obj.dirty);
            }
        }
    }
    victims.into_iter().collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn index_selects_exactly_the_full_scan_victims(
        ops in prop::collection::vec(op_strategy(), 1..120),
        probe in prop_oneof![
            Just((Duration::ZERO, Duration::ZERO)),
            Just((Duration::from_secs(60), Duration::from_secs(240))),
            // The agent's production parameters (§6.3).
            Just((Duration::from_secs(300), Duration::from_secs(1800))),
        ],
    ) {
        let mut cluster = Cluster::new(ClusterConfig {
            nodes: NODES,
            replication_factor: 2,
            node_pool_bytes: 4 << 20,
            ..ClusterConfig::default()
        });
        let (min_age, min_idle) = probe;
        let mut now = SimTime::ZERO;
        for op in &ops {
            match *op {
                Op::Write { k, home, dirty } => {
                    cluster
                        .write_with_dirty(home, &key(k), Value::synthetic(1 << 10), now, dirty)
                        .result
                        .ok();
                }
                Op::Read { k, from } => {
                    cluster.read(from, &key(k), now).result.ok();
                }
                Op::Evict { k } => {
                    cluster.evict(&key(k)).result.ok();
                }
                Op::Delete { k } => {
                    cluster.delete(&key(k)).result.ok();
                }
                Op::Crash { node } => {
                    if cluster.live_nodes() > 1 {
                        cluster.crash_node(node, now);
                    }
                }
                Op::Restart { node } => cluster.restart_node(node, now),
                Op::Advance { secs } => now += Duration::from_secs(u64::from(secs)),
            }
            // The invariant holds at every intermediate state, not just at
            // quiescence — check after each mutation.
            let (victims, visited) = cluster.evict_candidates(now, min_age, min_idle);
            let reference = full_scan_reference(&cluster, now, min_age, min_idle);
            prop_assert_eq!(&victims, &reference);
            // The accelerator never inspects more entries than the scan it
            // replaces (two index walks, each breaking at the first
            // non-expirable entry).
            prop_assert!(
                visited <= 2 * cluster.len() as u64 + 2,
                "visited {} of {} objects",
                visited,
                cluster.len()
            );
        }
    }
}
