//! SWIM-style gossip membership — observed node liveness for the control
//! plane.
//!
//! With gossip enabled the coordinator no longer learns of node failures
//! by omniscience (the `crash_node` caller running recovery inline): each
//! probe round, every live node pings one seeded-random peer; an
//! unreachable or dead peer becomes **Suspect**, a suspect that survives
//! the confirmation window without a successful probe is **Confirmed
//! dead** (triggering the leader's re-replication walk and tripping the
//! per-shard circuit breakers upstream), and a later successful probe
//! refutes the suspicion — or readmits a previously confirmed node.
//!
//! Dissemination is modeled as instantaneous within a reachability group
//! (one shared membership table): SWIM's infection-style propagation delay
//! is folded into the probe period × confirmation window, which is the
//! scale the simulation observes. Network partitions make cross-group
//! probes fail, so both sides start suspecting each other — exactly the
//! false-suspicion / refutation dance SWIM is built around. Events carry
//! their observer so the cluster can act only on observations from the
//! quorum side.
//!
//! All timing runs on the virtual clock and the probe-target stream is
//! seeded, so rounds are byte-reproducible per seed (ofc-lint D1/D6).
//! With `enabled = false` (the default) the plane registers no telemetry
//! and draws no randomness.

use crate::NodeId;
use ofc_simtime::SimTime;
use ofc_telemetry::{Counter, Telemetry};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::time::Duration;

/// Gossip-membership configuration.
#[derive(Debug, Clone)]
pub struct GossipConfig {
    /// Whether observed membership replaces coordinator omniscience.
    pub enabled: bool,
    /// Seed of the probe-target stream.
    pub seed: u64,
    /// Probe round cadence (drives the tick the runtime schedules).
    pub period: Duration,
    /// How long a suspicion must survive unrefuted before the member is
    /// confirmed dead.
    pub confirm_after: Duration,
}

impl Default for GossipConfig {
    fn default() -> Self {
        GossipConfig {
            enabled: false,
            seed: 0x905_51b,
            period: Duration::from_secs(1),
            confirm_after: Duration::from_secs(3),
        }
    }
}

/// Observed liveness of a member.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemberState {
    /// Probes succeed (or no failure observed yet).
    Alive,
    /// A probe failed; awaiting confirmation or refutation.
    Suspect,
    /// The suspicion outlived the confirmation window.
    Dead,
}

/// A membership transition surfaced by a probe round. `observer` is the
/// probing node — the cluster acts on confirmations only when the
/// observer's side holds the coordinator quorum.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GossipEvent {
    /// `node` newly suspected by `observer`.
    Suspected {
        /// The suspected member.
        node: NodeId,
        /// The probing node.
        observer: NodeId,
    },
    /// `node` confirmed dead (suspicion outlived the window).
    Confirmed {
        /// The confirmed-dead member.
        node: NodeId,
        /// The probing node.
        observer: NodeId,
    },
    /// A live probe refuted `node`'s suspicion.
    Refuted {
        /// The refuted member.
        node: NodeId,
        /// The probing node.
        observer: NodeId,
    },
    /// A live probe readmitted a previously confirmed-dead `node`.
    Rejoined {
        /// The readmitted member.
        node: NodeId,
        /// The probing node.
        observer: NodeId,
    },
}

#[derive(Debug)]
struct GossipMetrics {
    rounds: Counter,
    suspects: Counter,
    confirms: Counter,
    refutes: Counter,
}

impl GossipMetrics {
    fn new(t: &Telemetry) -> Self {
        GossipMetrics {
            rounds: t.counter("gossip.rounds"),
            suspects: t.counter("gossip.suspects"),
            confirms: t.counter("gossip.confirms"),
            refutes: t.counter("gossip.refutes"),
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Member {
    state: MemberState,
    /// When the current suspicion started (meaningful in `Suspect`).
    suspected_at: SimTime,
}

/// The gossip membership plane. See the module docs.
#[derive(Debug)]
pub struct GossipPlane {
    cfg: GossipConfig,
    members: Vec<Member>,
    rng: ChaCha8Rng,
    /// Registered only when enabled, so default configurations leave the
    /// telemetry registry untouched.
    metrics: Option<GossipMetrics>,
}

impl GossipPlane {
    /// Builds the membership plane for `nodes` members.
    pub fn new(cfg: GossipConfig, nodes: usize, telemetry: &Telemetry) -> Self {
        let rng = ChaCha8Rng::seed_from_u64(cfg.seed);
        let metrics = cfg.enabled.then(|| GossipMetrics::new(telemetry));
        GossipPlane {
            cfg,
            members: vec![
                Member {
                    state: MemberState::Alive,
                    suspected_at: SimTime::ZERO,
                };
                nodes
            ],
            rng,
            metrics,
        }
    }

    /// Re-registers the gossip metrics on a shared telemetry plane (no-op
    /// when disabled).
    pub fn bind_telemetry(&mut self, telemetry: &Telemetry) {
        if self.cfg.enabled {
            self.metrics = Some(GossipMetrics::new(telemetry));
        }
    }

    /// Whether observed membership is active.
    pub fn enabled(&self) -> bool {
        self.cfg.enabled
    }

    /// The probe cadence (for the runtime's tick scheduling).
    pub fn period(&self) -> Duration {
        self.cfg.period
    }

    /// Observed state of a member.
    pub fn state(&self, node: NodeId) -> MemberState {
        self.members
            .get(node)
            .map(|m| m.state)
            .unwrap_or(MemberState::Alive)
    }

    /// Grows the table when the cluster adds a node.
    pub fn grow_to(&mut self, nodes: usize) {
        while self.members.len() < nodes {
            self.members.push(Member {
                state: MemberState::Alive,
                suspected_at: SimTime::ZERO,
            });
        }
    }

    /// Runs one probe round: each physically-up node probes one seeded-
    /// random peer; `up(n)` is ground-truth process liveness and
    /// `reachable(a, b)` the current partition reachability. Returns the
    /// membership transitions this round produced, in observer order.
    pub fn round(
        &mut self,
        now: SimTime,
        up: impl Fn(NodeId) -> bool,
        reachable: impl Fn(NodeId, NodeId) -> bool,
    ) -> Vec<GossipEvent> {
        if !self.cfg.enabled || self.members.len() < 2 {
            return Vec::new();
        }
        if let Some(m) = &self.metrics {
            m.rounds.inc();
        }
        let n = self.members.len();
        let mut events = Vec::new();
        for observer in 0..n {
            if !up(observer) {
                continue; // A dead process probes no one.
            }
            // Pick a peer uniformly among the other members.
            let draw = self.rng.gen_range(0..n - 1);
            let target = if draw >= observer { draw + 1 } else { draw };
            let ok = up(target) && reachable(observer, target);
            let member = &mut self.members[target];
            if ok {
                match member.state {
                    MemberState::Alive => {}
                    MemberState::Suspect => {
                        member.state = MemberState::Alive;
                        if let Some(m) = &self.metrics {
                            m.refutes.inc();
                        }
                        events.push(GossipEvent::Refuted {
                            node: target,
                            observer,
                        });
                    }
                    MemberState::Dead => {
                        member.state = MemberState::Alive;
                        events.push(GossipEvent::Rejoined {
                            node: target,
                            observer,
                        });
                    }
                }
            } else {
                match member.state {
                    MemberState::Alive => {
                        member.state = MemberState::Suspect;
                        member.suspected_at = now;
                        if let Some(m) = &self.metrics {
                            m.suspects.inc();
                        }
                        events.push(GossipEvent::Suspected {
                            node: target,
                            observer,
                        });
                    }
                    MemberState::Suspect => {
                        if now >= member.suspected_at + self.cfg.confirm_after {
                            member.state = MemberState::Dead;
                            if let Some(m) = &self.metrics {
                                m.confirms.inc();
                            }
                            events.push(GossipEvent::Confirmed {
                                node: target,
                                observer,
                            });
                        }
                    }
                    MemberState::Dead => {}
                }
            }
        }
        events
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plane(nodes: usize) -> GossipPlane {
        let t = Telemetry::standalone();
        GossipPlane::new(
            GossipConfig {
                enabled: true,
                ..GossipConfig::default()
            },
            nodes,
            &t,
        )
    }

    /// Drives rounds at the configured period until `node` reaches
    /// `want`, returning how many rounds it took.
    fn rounds_until(
        g: &mut GossipPlane,
        start: SimTime,
        up: &dyn Fn(NodeId) -> bool,
        node: NodeId,
        want: MemberState,
        max_rounds: usize,
    ) -> usize {
        let period = g.period();
        for i in 0..max_rounds {
            let now = start + period * (i as u32);
            g.round(now, up, |_, _| true);
            if g.state(node) == want {
                return i + 1;
            }
        }
        panic!("node {node} never reached {want:?} in {max_rounds} rounds");
    }

    #[test]
    fn disabled_plane_is_inert() {
        let t = Telemetry::standalone();
        let mut g = GossipPlane::new(GossipConfig::default(), 4, &t);
        assert!(!g.enabled());
        let events = g.round(SimTime::ZERO, |_| true, |_, _| true);
        assert!(events.is_empty());
        assert_eq!(t.metrics().counter("gossip.rounds"), 0);
    }

    #[test]
    fn dead_node_is_suspected_then_confirmed() {
        let mut g = plane(5);
        let up = |n: NodeId| n != 2;
        let took = rounds_until(&mut g, SimTime::ZERO, &up, 2, MemberState::Suspect, 32);
        let resume = SimTime::ZERO + g.period() * (took as u32);
        let confirm_round = rounds_until(&mut g, resume, &up, 2, MemberState::Dead, 64);
        // Confirmation cannot beat the configured window (3 s at 1 s
        // rounds = at least 3 rounds after the suspicion).
        assert!(confirm_round >= 3, "confirmed after {confirm_round} rounds");
    }

    #[test]
    fn live_probe_refutes_suspicion() {
        let mut g = plane(4);
        // A transient blip: node 1 unreachable for one round only.
        let mut now = SimTime::ZERO;
        while g.state(1) != MemberState::Suspect {
            g.round(now, |n| n != 1, |_, _| true);
            now += g.period();
        }
        while g.state(1) == MemberState::Suspect {
            g.round(now, |_| true, |_, _| true);
            now += g.period();
        }
        assert_eq!(g.state(1), MemberState::Alive, "suspicion refuted");
    }

    #[test]
    fn confirmed_node_rejoins_on_successful_probe() {
        let mut g = plane(4);
        let mut now = SimTime::ZERO;
        while g.state(3) != MemberState::Dead {
            g.round(now, |n| n != 3, |_, _| true);
            now += g.period();
        }
        let mut rejoined = false;
        for _ in 0..32 {
            let events = g.round(now, |_| true, |_, _| true);
            now += g.period();
            if events
                .iter()
                .any(|e| matches!(e, GossipEvent::Rejoined { node: 3, .. }))
            {
                rejoined = true;
                break;
            }
        }
        assert!(rejoined, "restarted node readmitted");
        assert_eq!(g.state(3), MemberState::Alive);
    }

    #[test]
    fn partition_breeds_cross_group_suspicion_only() {
        let mut g = plane(6);
        // Nodes 0-2 vs 3-5.
        let group = |n: NodeId| usize::from(n >= 3);
        let mut now = SimTime::ZERO;
        let mut cross = 0;
        let mut same = 0;
        for _ in 0..64 {
            for e in g.round(now, |_| true, |a, b| group(a) == group(b)) {
                if let GossipEvent::Suspected { node, observer } = e {
                    if group(node) == group(observer) {
                        same += 1;
                    } else {
                        cross += 1;
                    }
                }
            }
            now += g.period();
        }
        assert!(cross > 0, "cross-group probes must fail under partition");
        assert_eq!(same, 0, "same-group members stay trusted");
    }

    #[test]
    fn rounds_are_deterministic_per_seed() {
        let run = |seed: u64| {
            let t = Telemetry::standalone();
            let mut g = GossipPlane::new(
                GossipConfig {
                    enabled: true,
                    seed,
                    ..GossipConfig::default()
                },
                5,
                &t,
            );
            let mut log = Vec::new();
            let mut now = SimTime::ZERO;
            for _ in 0..32 {
                log.extend(g.round(now, |n| n != 4, |_, _| true));
                now += g.period();
            }
            log
        };
        assert_eq!(run(3), run(3));
    }
}
