//! Raft-style replicated coordinator — the control plane's consensus core.
//!
//! The RAMCloud-model coordinator (tablet map, replica placement, shard
//! anchors) was a single in-memory authority inside [`crate::cluster::
//! Cluster`]: crash it and the cluster is headless. This module replicates
//! it: a small fixed group of coordinator replicas (co-located with the
//! first `replicas` storage nodes) carries every tablet-map mutation
//! through a replicated log, commits on majority acknowledgement, elects a
//! leader with per-seed randomized timeouts when the current one dies or
//! is partitioned away, and catches restarted replicas up by log replay —
//! or by snapshot install once they lag past the compaction horizon.
//!
//! The model is deliberately compact rather than a full Raft port (no
//! per-replica divergent logs, no vote RPCs): replication state is a
//! per-replica `match_index` against one authoritative log, which is
//! exactly the observable surface the simulation needs — *when* is a
//! command committed, *who* may commit it, and *what happens* to lagging
//! or minority replicas. All timing runs on the virtual clock and all
//! randomness comes from one seeded stream, so every run is
//! byte-reproducible per seed (ofc-lint D1/D6).
//!
//! **Default-path guarantee:** with `replicas <= 1` the coordinator is the
//! legacy single authority — [`ReplicatedCoordinator::propose`] returns
//! `Ok(Duration::ZERO)` without touching the log, the RNG, or the
//! telemetry registry, so single-replica configurations stay byte-
//! identical to the pre-replication code.

use crate::shard::ShardId;
use crate::{Key, NodeId};
use ofc_simtime::SimTime;
use ofc_telemetry::{Counter, Gauge, Telemetry};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::collections::VecDeque;
use std::time::Duration;

/// Identifier of a coordinator replica. Replica `r` is co-located with
/// storage node `r`, so a network partition of the nodes partitions the
/// coordinator group the same way.
pub type ReplicaId = usize;

/// Replicated-coordinator configuration.
#[derive(Debug, Clone)]
pub struct RaftConfig {
    /// Number of coordinator replicas. `1` (the default) is the legacy
    /// single in-memory authority: no log, no elections, zero overhead.
    pub replicas: usize,
    /// Seed of the election-timeout randomization stream.
    pub seed: u64,
    /// Lower bound of the randomized election timeout.
    pub election_timeout_min: Duration,
    /// Upper bound of the randomized election timeout.
    pub election_timeout_max: Duration,
    /// Leader heartbeat / follower catch-up cadence (drives the
    /// coordinator tick the runtime schedules).
    pub heartbeat_interval: Duration,
    /// Latency charged to a client operation for the majority-ack round
    /// trip of each committed command (only when `replicas > 1`).
    pub commit_latency: Duration,
    /// A rejoining replica lagging more than this many log entries behind
    /// the commit index catches up by snapshot install instead of replay.
    pub snapshot_lag: u64,
    /// Retained log suffix; older entries are folded into the snapshot.
    pub log_retain: usize,
}

impl Default for RaftConfig {
    fn default() -> Self {
        RaftConfig {
            replicas: 1,
            seed: 0x0fc_c09d,
            election_timeout_min: Duration::from_millis(150),
            election_timeout_max: Duration::from_millis(300),
            heartbeat_interval: Duration::from_millis(50),
            commit_latency: Duration::from_micros(120),
            snapshot_lag: 256,
            log_retain: 1024,
        }
    }
}

/// A state-machine command carried by the replicated log. The applied
/// state machine is the cluster's tablet/replica/shard-anchor maps; the
/// log records every mutation so tests can audit that no committed
/// assignment is lost across failovers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Command {
    /// Master + backup placement of a key (writes, migrations, recovery
    /// promotions).
    AssignTablet {
        /// The object key.
        key: Key,
        /// Master node after the mutation.
        master: NodeId,
        /// Backup nodes after the mutation.
        backups: Vec<NodeId>,
    },
    /// Retirement of a key's placement (eviction, deletion).
    RetireTablet {
        /// The object key.
        key: Key,
    },
    /// Re-anchoring of a shard onto a new master-placement node after its
    /// anchor was confirmed dead.
    ReassignShard {
        /// The shard being re-anchored.
        shard: ShardId,
        /// The new anchor node.
        anchor: NodeId,
    },
}

/// One replicated log entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogEntry {
    /// Term the entry was proposed in.
    pub term: u64,
    /// 1-based log index.
    pub index: u64,
    /// The carried command.
    pub command: Command,
}

/// Proposal failure: no leader backed by a reachable replica majority.
/// The cluster surfaces this to clients as [`crate::RcError::Transient`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NoQuorum;

#[derive(Debug)]
struct RaftMetrics {
    elections: Counter,
    term: Gauge,
    log_len: Gauge,
    snapshot_installs: Counter,
    commits: Counter,
    no_quorum_rejects: Counter,
}

impl RaftMetrics {
    fn new(t: &Telemetry) -> Self {
        RaftMetrics {
            elections: t.counter("raft.elections"),
            term: t.gauge("raft.term"),
            log_len: t.gauge("raft.log_len"),
            snapshot_installs: t.counter("raft.snapshot_installs"),
            commits: t.counter("raft.commits"),
            no_quorum_rejects: t.counter("raft.no_quorum_rejects"),
        }
    }
}

#[derive(Debug, Clone)]
struct Replica {
    up: bool,
    /// Highest log index known replicated on this replica.
    match_index: u64,
    /// State below this index arrived via snapshot install, not replay.
    snapshot_index: u64,
    /// This replica's current randomized election timeout.
    timeout: Duration,
}

/// The replicated coordinator group. See the module docs.
#[derive(Debug)]
pub struct ReplicatedCoordinator {
    cfg: RaftConfig,
    replicas: Vec<Replica>,
    term: u64,
    leader: Option<ReplicaId>,
    /// When the group first observed the current leaderless period.
    leader_lost_at: Option<SimTime>,
    /// Retained log suffix (older entries live in the snapshot).
    log: VecDeque<LogEntry>,
    /// Index of the last appended entry (1-based; 0 = empty log).
    last_index: u64,
    /// Index of the last majority-committed entry.
    commit_index: u64,
    rng: ChaCha8Rng,
    /// Registered only in replicated mode, so single-replica
    /// configurations leave the telemetry registry untouched.
    metrics: Option<RaftMetrics>,
}

impl ReplicatedCoordinator {
    /// Builds the coordinator group. With `cfg.replicas <= 1` the group is
    /// inert (see the module docs).
    pub fn new(cfg: RaftConfig, telemetry: &Telemetry) -> Self {
        let n = cfg.replicas.max(1);
        let rng = ChaCha8Rng::seed_from_u64(cfg.seed);
        let replicas = vec![
            Replica {
                up: true,
                match_index: 0,
                snapshot_index: 0,
                timeout: cfg.election_timeout_min,
            };
            n
        ];
        let mut coord = ReplicatedCoordinator {
            cfg,
            replicas,
            term: 1,
            leader: Some(0),
            leader_lost_at: None,
            log: VecDeque::new(),
            last_index: 0,
            commit_index: 0,
            rng,
            metrics: None,
        };
        if coord.is_replicated() {
            coord.randomize_timeouts();
            coord.metrics = Some(RaftMetrics::new(telemetry));
        }
        coord
    }

    /// Re-registers the coordinator metrics on a shared telemetry plane
    /// (no-op in single-replica mode).
    pub fn bind_telemetry(&mut self, telemetry: &Telemetry) {
        if self.is_replicated() {
            self.metrics = Some(RaftMetrics::new(telemetry));
        }
    }

    /// Whether consensus is actually in play (`replicas > 1`).
    pub fn is_replicated(&self) -> bool {
        self.replicas.len() > 1
    }

    /// Number of coordinator replicas.
    pub fn replicas(&self) -> usize {
        self.replicas.len()
    }

    /// The current leader, if one holds a reachable majority.
    pub fn leader(&self) -> Option<ReplicaId> {
        self.leader
    }

    /// The current term.
    pub fn term(&self) -> u64 {
        self.term
    }

    /// Index of the last appended entry.
    pub fn last_index(&self) -> u64 {
        self.last_index
    }

    /// Index of the last majority-committed entry.
    pub fn commit_index(&self) -> u64 {
        self.commit_index
    }

    /// Whether replica `r` is up.
    pub fn replica_up(&self, r: ReplicaId) -> bool {
        self.replicas.get(r).is_some_and(|rep| rep.up)
    }

    /// The retained (uncompacted) log suffix, oldest first.
    pub fn retained_log(&self) -> impl Iterator<Item = &LogEntry> {
        self.log.iter()
    }

    /// Looks up a retained entry by index (`None` once compacted away).
    pub fn entry(&self, index: u64) -> Option<&LogEntry> {
        let first = self.first_retained_index()?;
        if index < first || index > self.last_index {
            return None;
        }
        self.log.get((index - first) as usize)
    }

    fn first_retained_index(&self) -> Option<u64> {
        self.log.front().map(|e| e.index)
    }

    /// Crashes a coordinator replica. The tablet state machine survives on
    /// the surviving majority; a crashed leader triggers an election after
    /// the (seeded) timeout.
    pub fn crash_replica(&mut self, r: ReplicaId, now: SimTime) {
        if !self.is_replicated() {
            return;
        }
        let Some(rep) = self.replicas.get_mut(r) else {
            return;
        };
        if !rep.up {
            return;
        }
        rep.up = false;
        if self.leader == Some(r) {
            self.leader = None;
            self.leader_lost_at = Some(now);
        }
    }

    /// Restarts a crashed replica. It catches up on the next tick: by log
    /// replay when its lag fits the retained log, by snapshot install
    /// otherwise.
    pub fn restart_replica(&mut self, r: ReplicaId, _now: SimTime) {
        if !self.is_replicated() {
            return;
        }
        if let Some(rep) = self.replicas.get_mut(r) {
            rep.up = true;
        }
    }

    /// Whether node `a` can reach node `b` under `partition` (same group,
    /// or no partition at all).
    fn reachable(partition: Option<&[usize]>, a: usize, b: usize) -> bool {
        match partition {
            Some(groups) => groups.get(a) == groups.get(b),
            None => true,
        }
    }

    /// Whether replica `from`'s side of `partition` holds a majority of
    /// the coordinator group (counting only up replicas).
    fn majority_from(&self, from: ReplicaId, partition: Option<&[usize]>) -> bool {
        let acks = self
            .replicas
            .iter()
            .enumerate()
            .filter(|(i, rep)| rep.up && Self::reachable(partition, from, *i))
            .count();
        acks * 2 > self.replicas.len()
    }

    /// Whether the current leader is alive and backed by a reachable
    /// majority.
    fn leader_valid(&self, partition: Option<&[usize]>) -> bool {
        match self.leader {
            Some(l) => self.replicas[l].up && self.majority_from(l, partition),
            None => false,
        }
    }

    /// Drives elections and follower catch-up. Called by the runtime's
    /// coordinator tick and as a prelude to every proposal; a no-op in
    /// single-replica mode.
    pub fn tick(&mut self, now: SimTime, partition: Option<&[usize]>) {
        if !self.is_replicated() {
            return;
        }
        if self.leader_valid(partition) {
            self.leader_lost_at = None;
            self.catch_up_followers(partition);
            return;
        }
        // Leaderless (or the leader lost its majority): start — or
        // continue — an election round.
        let lost_at = *self.leader_lost_at.get_or_insert(now);
        self.leader = None;
        // The winner is the quorum-capable up replica whose randomized
        // timeout fires first (ties break on the lower id, mirroring
        // Raft's first-candidate-to-campaign advantage).
        let winner = self
            .replicas
            .iter()
            .enumerate()
            .filter(|(i, rep)| rep.up && self.majority_from(*i, partition))
            .min_by_key(|(i, rep)| (rep.timeout, *i))
            .map(|(i, rep)| (i, rep.timeout));
        let Some((winner, timeout)) = winner else {
            return; // No side can form a quorum; stay headless.
        };
        if now < lost_at + timeout {
            return; // Timeout not yet elapsed; stay in the election window.
        }
        self.term += 1;
        self.leader = Some(winner);
        self.leader_lost_at = None;
        self.randomize_timeouts();
        if let Some(m) = &self.metrics {
            m.elections.inc();
            m.term.set(now, self.term as f64);
        }
        self.catch_up_followers(partition);
    }

    /// Brings every reachable up follower to the commit index: log replay
    /// within the retained suffix, snapshot install past the lag horizon.
    fn catch_up_followers(&mut self, partition: Option<&[usize]>) {
        let Some(leader) = self.leader else {
            return;
        };
        let commit = self.commit_index;
        let lag_horizon = self.cfg.snapshot_lag;
        let mut installs = 0u64;
        for (i, rep) in self.replicas.iter_mut().enumerate() {
            if !rep.up || !Self::reachable(partition, leader, i) || rep.match_index >= commit {
                continue;
            }
            if commit - rep.match_index > lag_horizon {
                rep.snapshot_index = commit;
                installs += 1;
            }
            rep.match_index = commit;
        }
        if installs > 0 {
            if let Some(m) = &self.metrics {
                m.snapshot_installs.add(installs);
            }
        }
    }

    /// Whether a client on node `origin` can currently commit control-
    /// plane mutations: a valid leader exists and is reachable from
    /// `origin`. Always true in single-replica mode.
    pub fn can_serve(&self, origin: NodeId, partition: Option<&[usize]>) -> bool {
        if !self.is_replicated() {
            return true;
        }
        match self.leader {
            Some(l) => self.leader_valid(partition) && Self::reachable(partition, origin, l),
            None => false,
        }
    }

    /// Proposes a command from node `origin` and commits it on a majority.
    ///
    /// Returns the commit latency to charge to the client operation, or
    /// [`NoQuorum`] when no reachable leader holds a majority (the caller
    /// surfaces this as a transient error). In single-replica mode this is
    /// free and infallible.
    pub fn propose(
        &mut self,
        command: Command,
        origin: NodeId,
        now: SimTime,
        partition: Option<&[usize]>,
    ) -> Result<Duration, NoQuorum> {
        if !self.is_replicated() {
            return Ok(Duration::ZERO);
        }
        self.tick(now, partition);
        if !self.can_serve(origin, partition) {
            if let Some(m) = &self.metrics {
                m.no_quorum_rejects.inc();
            }
            return Err(NoQuorum);
        }
        // ofc-lint: allow(panic) reason=can_serve above guarantees a leader
        let leader = self.leader.unwrap();
        self.last_index += 1;
        self.log.push_back(LogEntry {
            term: self.term,
            index: self.last_index,
            command,
        });
        // Replicate to every reachable up replica; the leader's majority
        // (checked above) commits the entry in one modeled round trip.
        for (i, rep) in self.replicas.iter_mut().enumerate() {
            if rep.up && Self::reachable(partition, leader, i) {
                rep.match_index = self.last_index;
            }
        }
        self.commit_index = self.last_index;
        while self.log.len() > self.cfg.log_retain {
            self.log.pop_front();
        }
        if let Some(m) = &self.metrics {
            m.commits.inc();
            m.log_len.set(now, self.last_index as f64);
        }
        Ok(self.cfg.commit_latency)
    }

    /// Draws a fresh randomized election timeout for every replica. The
    /// only RNG consumer in the module — and it runs only in replicated
    /// mode, so default-path runs never touch the stream.
    fn randomize_timeouts(&mut self) {
        let lo = self.cfg.election_timeout_min.as_nanos() as u64;
        let hi = (self.cfg.election_timeout_max.as_nanos() as u64).max(lo + 1);
        for rep in &mut self.replicas {
            rep.timeout = Duration::from_nanos(self.rng.gen_range(lo..hi));
        }
    }

    /// Count of up replicas.
    pub fn up_replicas(&self) -> usize {
        self.replicas.iter().filter(|r| r.up).count()
    }

    /// A replica's snapshot floor (state below this index arrived via
    /// snapshot install). Exposed for tests.
    pub fn snapshot_index(&self, r: ReplicaId) -> u64 {
        self.replicas
            .get(r)
            .map(|rep| rep.snapshot_index)
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn replicated(n: usize) -> ReplicatedCoordinator {
        let t = Telemetry::standalone();
        ReplicatedCoordinator::new(
            RaftConfig {
                replicas: n,
                ..RaftConfig::default()
            },
            &t,
        )
    }

    fn cmd(i: u64) -> Command {
        Command::AssignTablet {
            key: Key::from(format!("k{i}").as_str()),
            master: 0,
            backups: vec![1, 2],
        }
    }

    #[test]
    fn single_replica_is_inert() {
        let mut c = replicated(1);
        assert!(!c.is_replicated());
        let lat = c.propose(cmd(0), 0, SimTime::ZERO, None).unwrap();
        assert_eq!(lat, Duration::ZERO);
        assert_eq!(c.last_index(), 0, "inert mode appends nothing");
        assert_eq!(c.leader(), Some(0));
    }

    #[test]
    fn replicated_commit_charges_latency_and_appends() {
        let mut c = replicated(3);
        let lat = c.propose(cmd(0), 0, SimTime::ZERO, None).unwrap();
        assert_eq!(lat, RaftConfig::default().commit_latency);
        assert_eq!(c.last_index(), 1);
        assert_eq!(c.commit_index(), 1);
        assert!(matches!(
            c.entry(1).unwrap().command,
            Command::AssignTablet { .. }
        ));
    }

    #[test]
    fn leader_crash_triggers_timed_election() {
        let mut c = replicated(3);
        let t0 = SimTime::from_millis(10);
        c.crash_replica(0, t0);
        assert_eq!(c.leader(), None);
        // Immediately after the crash: inside the election window.
        assert!(c.propose(cmd(0), 1, t0, None).is_err());
        // Past the maximum timeout a new leader must exist.
        let t1 = t0 + RaftConfig::default().election_timeout_max;
        c.tick(t1, None);
        let leader = c.leader().expect("election completed");
        assert_ne!(leader, 0);
        assert!(c.term() > 1);
        assert!(c.propose(cmd(1), 1, t1, None).is_ok());
    }

    #[test]
    fn minority_side_cannot_commit() {
        let mut c = replicated(3);
        // Nodes 0 and 1 on one side, node 2 alone.
        let partition = vec![0usize, 0, 1];
        let t = SimTime::from_millis(5);
        c.tick(t, Some(&partition));
        // Leader 0 keeps its majority; a client on node 2 cannot reach it.
        assert!(c.propose(cmd(0), 2, t, Some(&partition)).is_err());
        assert!(c.propose(cmd(1), 0, t, Some(&partition)).is_ok());
        assert!(c.propose(cmd(2), 1, t, Some(&partition)).is_ok());
    }

    #[test]
    fn isolated_leader_steps_down_and_majority_reelects() {
        let mut c = replicated(3);
        // Leader 0 cut off from 1 and 2.
        let partition = vec![0usize, 1, 1];
        let t0 = SimTime::from_millis(1);
        c.tick(t0, Some(&partition));
        assert_eq!(c.leader(), None, "leader lost its majority");
        let t1 = t0 + RaftConfig::default().election_timeout_max;
        c.tick(t1, Some(&partition));
        let leader = c.leader().expect("majority side elects");
        assert!(leader == 1 || leader == 2);
        // Majority side serves; the isolated old leader's side does not.
        assert!(c.propose(cmd(0), 1, t1, Some(&partition)).is_ok());
        assert!(c.propose(cmd(1), 0, t1, Some(&partition)).is_err());
        // Healing restores service for everyone under the new leader.
        c.tick(t1, None);
        assert!(c.propose(cmd(2), 0, t1, None).is_ok());
    }

    #[test]
    fn no_quorum_when_majority_down() {
        let mut c = replicated(3);
        let t = SimTime::from_millis(2);
        c.crash_replica(1, t);
        c.crash_replica(2, t);
        let t1 = t + Duration::from_secs(1);
        c.tick(t1, None);
        // Replica 0 alone is not a majority of 3.
        assert!(c.propose(cmd(0), 0, t1, None).is_err());
        // Restarting one replica restores the quorum.
        c.restart_replica(1, t1);
        let t2 = t1 + Duration::from_secs(1);
        c.tick(t2, None);
        assert!(c.propose(cmd(1), 0, t2, None).is_ok());
    }

    #[test]
    fn lagging_replica_catches_up_by_replay_then_snapshot() {
        let mut c = replicated(3);
        let t0 = SimTime::from_millis(1);
        c.crash_replica(2, t0);
        // Small lag: replay.
        for i in 0..10 {
            c.propose(cmd(i), 0, t0, None).unwrap();
        }
        c.restart_replica(2, t0);
        c.tick(t0, None);
        assert_eq!(c.snapshot_index(2), 0, "short lag replays the log");
        // Large lag: snapshot install.
        c.crash_replica(2, t0);
        for i in 0..(RaftConfig::default().snapshot_lag + 5) {
            c.propose(cmd(100 + i), 0, t0, None).unwrap();
        }
        c.restart_replica(2, t0);
        c.tick(t0, None);
        assert_eq!(
            c.snapshot_index(2),
            c.commit_index(),
            "deep lag installs a snapshot"
        );
    }

    #[test]
    fn log_compaction_bounds_memory() {
        let mut c = replicated(3);
        let retain = RaftConfig::default().log_retain;
        for i in 0..(retain as u64 + 100) {
            c.propose(cmd(i), 0, SimTime::ZERO, None).unwrap();
        }
        assert_eq!(c.retained_log().count(), retain);
        assert!(c.entry(1).is_none(), "old entries compacted away");
        assert!(c.entry(c.last_index()).is_some());
    }

    #[test]
    fn elections_are_deterministic_per_seed() {
        let run = |seed: u64| -> (u64, Vec<Option<ReplicaId>>) {
            let t = Telemetry::standalone();
            let mut c = ReplicatedCoordinator::new(
                RaftConfig {
                    replicas: 5,
                    seed,
                    ..RaftConfig::default()
                },
                &t,
            );
            let mut leaders = Vec::new();
            let mut now = SimTime::ZERO;
            for step in 0..6 {
                now += Duration::from_millis(400);
                c.crash_replica(step % 5, now);
                now += Duration::from_millis(400);
                c.tick(now, None);
                leaders.push(c.leader());
                c.restart_replica(step % 5, now);
                c.tick(now, None);
            }
            (c.term(), leaders)
        };
        assert_eq!(run(7), run(7), "same seed, same election history");
        let (_, a) = run(7);
        let (_, b) = run(8);
        // Different seeds draw different timeouts; the histories are
        // allowed to coincide but the streams must be independent.
        let _ = (a, b);
    }
}
