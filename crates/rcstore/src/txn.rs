//! Optimistic multi-object transactions over the cache store.
//!
//! The paper notes that RAMCloud "can be extended to support full
//! linearizability and multi-object transactions" (§6.2, citing Lee et
//! al., SOSP '15); this module provides that extension. A transaction
//! records versioned reads and buffered writes; commit validates that no
//! read object changed (optimistic concurrency control) and then applies
//! every write, rolling back on mid-commit failure so commits are
//! all-or-nothing.
//!
//! Versions are coordinator metadata: every committed write, delete, or
//! eviction of a key bumps its version, so a validation conflict is
//! detected even when the object vanished entirely.
//!
//! # Examples
//!
//! ```
//! use ofc_rcstore::cluster::Cluster;
//! use ofc_rcstore::txn::Transaction;
//! use ofc_rcstore::{ClusterConfig, Key, Value};
//! use ofc_simtime::SimTime;
//!
//! let mut cluster = Cluster::new(ClusterConfig::default());
//! let (a, b) = (Key::from("acct/a"), Key::from("acct/b"));
//! cluster.write(0, &a, Value::synthetic(100), SimTime::ZERO).result.unwrap();
//! cluster.write(0, &b, Value::synthetic(50), SimTime::ZERO).result.unwrap();
//!
//! let mut txn = Transaction::begin();
//! txn.read(&mut cluster, 0, &a, SimTime::ZERO).unwrap();
//! txn.read(&mut cluster, 0, &b, SimTime::ZERO).unwrap();
//! txn.write(a.clone(), Value::synthetic(50));
//! txn.write(b.clone(), Value::synthetic(100));
//! txn.commit(&mut cluster, 0, SimTime::ZERO).result.unwrap();
//! ```

use crate::cluster::Cluster;
use crate::{Key, NodeId, RcError, Timed, Value};
use ofc_simtime::SimTime;
use std::collections::BTreeMap;
use std::time::Duration;

/// Why a commit failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TxnError {
    /// A read object changed (or vanished) since the transaction read it.
    Conflict(Key),
    /// A buffered write could not be applied; the transaction rolled back.
    WriteFailed(Key, RcError),
    /// A transactional read missed the cache.
    ReadMiss(Key),
}

impl std::fmt::Display for TxnError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TxnError::Conflict(k) => write!(f, "conflict on {k}"),
            TxnError::WriteFailed(k, e) => write!(f, "write of {k} failed: {e}"),
            TxnError::ReadMiss(k) => write!(f, "transactional read of {k} missed"),
        }
    }
}

impl std::error::Error for TxnError {}

/// An in-flight transaction: validated reads plus buffered writes.
#[derive(Debug, Default)]
pub struct Transaction {
    /// Key → version observed at read time.
    reads: BTreeMap<Key, u64>,
    /// Buffered writes, applied at commit (last write per key wins).
    writes: BTreeMap<Key, Value>,
}

impl Transaction {
    /// Starts an empty transaction.
    pub fn begin() -> Self {
        Transaction::default()
    }

    /// Reads `key` within the transaction, recording its version for
    /// commit-time validation. Reads-your-writes: a buffered write
    /// satisfies the read without touching the store.
    pub fn read(
        &mut self,
        cluster: &mut Cluster,
        from: NodeId,
        key: &Key,
        now: SimTime,
    ) -> Result<Value, TxnError> {
        if let Some(v) = self.writes.get(key) {
            return Ok(v.clone());
        }
        let t = cluster.read(from, key, now);
        match t.result {
            Ok((value, _)) => {
                self.reads.insert(*key, cluster.version_of(key));
                Ok(value)
            }
            Err(_) => Err(TxnError::ReadMiss(*key)),
        }
    }

    /// Buffers a write; nothing is visible to other clients until commit.
    pub fn write(&mut self, key: Key, value: Value) {
        self.writes.insert(key, value);
    }

    /// Number of buffered writes.
    pub fn write_set_len(&self) -> usize {
        self.writes.len()
    }

    /// Validates the read set and applies the write set atomically.
    ///
    /// On any failure the store is restored to its pre-commit state and
    /// the error names the offending key; the caller may retry the whole
    /// transaction.
    pub fn commit(
        self,
        cluster: &mut Cluster,
        home: NodeId,
        now: SimTime,
    ) -> Timed<Result<(), TxnError>> {
        // Validation phase: every read version must still be current.
        for (key, version) in &self.reads {
            if cluster.version_of(key) != *version {
                return Timed::new(Err(TxnError::Conflict(*key)), Duration::ZERO);
            }
        }
        // Apply phase with rollback. Previous values are captured so a
        // mid-commit failure leaves no partial state.
        let mut latency = Duration::ZERO;
        let mut applied: Vec<(Key, Option<Value>)> = Vec::new();
        for (key, value) in &self.writes {
            let previous = cluster.peek_value(key);
            let t = cluster.write(home, key, value.clone(), now);
            match t.result {
                Ok(_) => {
                    latency += t.latency;
                    applied.push((*key, previous));
                }
                Err(e) => {
                    // Roll back in reverse order.
                    for (k, prev) in applied.into_iter().rev() {
                        match prev {
                            Some(v) => {
                                cluster.write(home, &k, v, now).result.ok();
                            }
                            None => {
                                cluster.delete(&k).result.ok();
                            }
                        }
                    }
                    return Timed::new(Err(TxnError::WriteFailed(*key, e)), latency);
                }
            }
        }
        // A committed transaction is durable: pending replica batches of
        // its writes land before the commit is acknowledged (no-op without
        // batching).
        cluster.flush_replication();
        Timed::new(Ok(()), latency)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ClusterConfig;

    fn cluster() -> Cluster {
        Cluster::new(ClusterConfig {
            nodes: 3,
            replication_factor: 1,
            node_pool_bytes: 32 << 20,
            max_object_bytes: 4 << 20,
            segment_bytes: 8 << 20,
            ..ClusterConfig::default()
        })
    }

    fn key(s: &str) -> Key {
        Key::from(s)
    }

    fn seed(c: &mut Cluster, k: &str, size: u64) {
        c.write_with_dirty(0, &key(k), Value::synthetic(size), SimTime::ZERO, false)
            .result
            .unwrap();
    }

    #[test]
    fn commit_applies_all_writes() {
        let mut c = cluster();
        seed(&mut c, "a", 100);
        seed(&mut c, "b", 50);
        let mut txn = Transaction::begin();
        txn.read(&mut c, 0, &key("a"), SimTime::ZERO).unwrap();
        txn.read(&mut c, 0, &key("b"), SimTime::ZERO).unwrap();
        txn.write(key("a"), Value::synthetic(50));
        txn.write(key("b"), Value::synthetic(100));
        txn.commit(&mut c, 0, SimTime::ZERO).result.unwrap();
        let a = c.read(0, &key("a"), SimTime::ZERO).result.unwrap().0;
        let b = c.read(0, &key("b"), SimTime::ZERO).result.unwrap().0;
        assert_eq!((a.size(), b.size()), (50, 100));
    }

    #[test]
    fn conflicting_update_aborts_commit() {
        let mut c = cluster();
        seed(&mut c, "a", 100);
        let mut txn = Transaction::begin();
        txn.read(&mut c, 0, &key("a"), SimTime::ZERO).unwrap();
        txn.write(key("a"), Value::synthetic(1));
        // A concurrent writer sneaks in before commit.
        seed(&mut c, "a", 999);
        let t = txn.commit(&mut c, 0, SimTime::ZERO);
        assert_eq!(t.result, Err(TxnError::Conflict(key("a"))));
        // The concurrent write survives.
        let a = c.read(0, &key("a"), SimTime::ZERO).result.unwrap().0;
        assert_eq!(a.size(), 999);
    }

    #[test]
    fn deletion_of_read_object_is_a_conflict() {
        let mut c = cluster();
        seed(&mut c, "a", 100);
        let mut txn = Transaction::begin();
        txn.read(&mut c, 0, &key("a"), SimTime::ZERO).unwrap();
        txn.write(key("b"), Value::synthetic(7));
        c.delete(&key("a")).result.unwrap();
        let t = txn.commit(&mut c, 0, SimTime::ZERO);
        assert_eq!(t.result, Err(TxnError::Conflict(key("a"))));
        assert!(!c.contains(&key("b")), "no partial commit");
    }

    #[test]
    fn failed_write_rolls_back_applied_ones() {
        let mut c = cluster();
        seed(&mut c, "a", 100);
        let mut txn = Transaction::begin();
        txn.write(key("a"), Value::synthetic(200));
        // This write exceeds the maximum object size: it must fail and the
        // earlier write to "a" must be rolled back.
        txn.write(key("too-big"), Value::synthetic(100 << 20));
        let t = txn.commit(&mut c, 0, SimTime::ZERO);
        assert!(matches!(t.result, Err(TxnError::WriteFailed(_, _))));
        let a = c.read(0, &key("a"), SimTime::ZERO).result.unwrap().0;
        assert_eq!(a.size(), 100, "rolled back to the pre-commit value");
        assert!(!c.contains(&key("too-big")));
    }

    #[test]
    fn mid_commit_crash_rolls_back_to_previous_value() {
        let mut c = cluster();
        seed(&mut c, "a", 100);
        let mut txn = Transaction::begin();
        // Writes apply in key order: "a" first, then the doomed "b".
        txn.write(key("a"), Value::synthetic(50));
        txn.write(key("b"), Value::synthetic(100 << 20)); // over max size
                                                          // Node 0 crashes right after the first write of the commit, so
                                                          // "a"'s mastership moves to a backup before the rollback runs.
        c.crash_after_writes(1, 0);
        let t = txn.commit(&mut c, 0, SimTime::ZERO);
        assert!(matches!(
            t.result,
            Err(TxnError::WriteFailed(_, RcError::ObjectTooLarge { .. }))
        ));
        assert!(!c.node(0).is_up(), "the injected crash fired");
        let a = c.read(1, &key("a"), SimTime::ZERO).result.unwrap().0;
        assert_eq!(a.size(), 100, "rolled back to the pre-commit value");
        assert!(!c.contains(&key("b")), "no partial commit");
        assert_eq!(c.telemetry().metrics().counter("rcstore.objects_lost"), 0);
    }

    #[test]
    fn mid_commit_crash_without_replicas_stays_all_or_nothing() {
        let mut c = Cluster::new(ClusterConfig {
            nodes: 2,
            replication_factor: 0,
            node_pool_bytes: 32 << 20,
            max_object_bytes: 4 << 20,
            segment_bytes: 8 << 20,
            ..ClusterConfig::default()
        });
        let mut txn = Transaction::begin();
        txn.write(key("a"), Value::synthetic(10));
        txn.write(key("b"), Value::synthetic(100 << 20)); // over max size
        c.crash_after_writes(1, 0);
        let t = txn.commit(&mut c, 0, SimTime::ZERO);
        assert!(matches!(t.result, Err(TxnError::WriteFailed(_, _))));
        // The unreplicated first write died with node 0 — the loss is
        // surfaced, and the rollback tolerates the already-gone key.
        assert!(!c.contains(&key("a")) && !c.contains(&key("b")));
        assert_eq!(c.telemetry().metrics().counter("rcstore.objects_lost"), 1);
    }

    #[test]
    fn commit_flushes_batched_replication() {
        use crate::shard::ShardConfig;
        let mut c = Cluster::new(ClusterConfig {
            nodes: 4,
            replication_factor: 2,
            node_pool_bytes: 32 << 20,
            max_object_bytes: 4 << 20,
            segment_bytes: 8 << 20,
            shard: ShardConfig {
                shards: 4,
                batch_max_entries: 16,
                ..ShardConfig::default()
            },
            ..ClusterConfig::default()
        });
        let mut txn = Transaction::begin();
        txn.write(key("a"), Value::synthetic(10));
        txn.write(key("b"), Value::synthetic(20));
        txn.commit(&mut c, 0, SimTime::ZERO).result.unwrap();
        assert_eq!(c.pending_replication(), 0, "commit acked means flushed");
        assert_eq!(c.live_replicas(&key("a")), 2);
        assert_eq!(c.live_replicas(&key("b")), 2);
    }

    #[test]
    fn reads_your_own_writes() {
        let mut c = cluster();
        let mut txn = Transaction::begin();
        txn.write(key("x"), Value::synthetic(42));
        let v = txn.read(&mut c, 0, &key("x"), SimTime::ZERO).unwrap();
        assert_eq!(v.size(), 42);
        assert!(!c.contains(&key("x")), "invisible before commit");
    }

    #[test]
    fn read_miss_is_an_error() {
        let mut c = cluster();
        let mut txn = Transaction::begin();
        assert_eq!(
            txn.read(&mut c, 0, &key("nope"), SimTime::ZERO),
            Err(TxnError::ReadMiss(key("nope")))
        );
    }

    #[test]
    fn blind_writes_commit_without_reads() {
        let mut c = cluster();
        let mut txn = Transaction::begin();
        txn.write(key("a"), Value::synthetic(1));
        txn.write(key("b"), Value::synthetic(2));
        assert_eq!(txn.write_set_len(), 2);
        txn.commit(&mut c, 0, SimTime::ZERO).result.unwrap();
        assert!(c.contains(&key("a")) && c.contains(&key("b")));
    }
}
