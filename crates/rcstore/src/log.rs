//! Log-structured memory for master copies — RAMCloud's signature storage
//! layout.
//!
//! Objects are appended to fixed-size segments; deletions only mark bytes
//! dead. A greedy cleaner compacts the lowest-utilization segments by
//! re-appending their live entries, reclaiming whole segments. The node's
//! memory pool is expressed as a *segment budget*: vertical scaling (§6.4)
//! simply raises or lowers the budget and the cleaner/evictor make the
//! physical layout follow.

use crate::{Key, RcError};
use ofc_intern::IdHashMap;

/// One log segment.
#[derive(Debug, Clone, Default)]
struct Segment {
    /// Bytes appended since the segment was opened (live + dead).
    used: u64,
    /// Live entries: key → size.
    live: IdHashMap<Key, u64>,
    /// Cached sum of `live` values, maintained on insert/remove so the
    /// per-append budget checks stay O(1) instead of O(entries).
    live_bytes: u64,
}

impl Segment {
    fn live_bytes(&self) -> u64 {
        debug_assert_eq!(self.live_bytes, self.live.values().sum::<u64>());
        self.live_bytes
    }

    /// Appends a live entry, maintaining `used` and the live-byte counter.
    fn insert(&mut self, key: Key, size: u64) {
        self.used += size;
        self.live_bytes += size;
        if let Some(old) = self.live.insert(key, size) {
            self.live_bytes -= old;
        }
    }

    /// Retires a live entry, maintaining the live-byte counter.
    fn remove(&mut self, key: &Key) -> Option<u64> {
        let size = self.live.remove(key)?;
        self.live_bytes -= size;
        Some(size)
    }
}

/// Statistics of one cleaner pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CleanStats {
    /// Segments freed.
    pub segments_freed: usize,
    /// Live bytes relocated.
    pub bytes_relocated: u64,
}

/// The log-structured store: an append-only heap of segments plus a cleaner.
#[derive(Debug)]
pub struct Log {
    segment_bytes: u64,
    /// Open segments; `None` slots are free to reuse.
    segments: Vec<Option<Segment>>,
    /// Index of the head (append) segment in `segments`.
    head: Option<usize>,
    /// Key → segment index.
    locations: IdHashMap<Key, usize>,
    /// Cached sum of live bytes across all segments (see
    /// [`Segment::live_bytes`]); keeps admission checks O(1).
    live_total: u64,
    /// Byte budget for live data (the node's cache pool size).
    budget: u64,
    cleaner_passes: u64,
}

impl Log {
    /// Creates a log with the given segment size and initial byte budget.
    ///
    /// # Panics
    ///
    /// Panics if `segment_bytes` is zero.
    pub fn new(segment_bytes: u64, budget_bytes: u64) -> Self {
        assert!(segment_bytes > 0, "segment size must be positive");
        Log {
            segment_bytes,
            segments: Vec::new(),
            head: None,
            locations: IdHashMap::default(),
            live_total: 0,
            budget: budget_bytes,
            cleaner_passes: 0,
        }
    }

    /// Segment size in bytes.
    pub fn segment_bytes(&self) -> u64 {
        self.segment_bytes
    }

    /// Budget expressed in bytes.
    pub fn budget_bytes(&self) -> u64 {
        self.budget
    }

    /// Number of currently allocated segments.
    pub fn allocated_segments(&self) -> usize {
        self.segments.iter().flatten().count()
    }

    /// Bytes physically allocated (whole segments).
    pub fn allocated_bytes(&self) -> u64 {
        self.allocated_segments() as u64 * self.segment_bytes
    }

    /// Bytes occupied by live entries (cached; O(1)).
    pub fn live_bytes(&self) -> u64 {
        debug_assert_eq!(
            self.live_total,
            self.segments
                .iter()
                .flatten()
                .map(Segment::live_bytes)
                .sum::<u64>()
        );
        self.live_total
    }

    /// Number of live entries.
    pub fn live_entries(&self) -> usize {
        self.locations.len()
    }

    /// Whether `key` is present.
    pub fn contains(&self, key: &Key) -> bool {
        self.locations.contains_key(key)
    }

    /// Cleaner invocations so far.
    pub fn cleaner_passes(&self) -> u64 {
        self.cleaner_passes
    }

    /// Live-byte utilization of allocated space (1.0 when empty).
    pub fn utilization(&self) -> f64 {
        let alloc = self.allocated_bytes();
        if alloc == 0 {
            1.0
        } else {
            self.live_bytes() as f64 / alloc as f64
        }
    }

    /// Changes the byte budget. Shrinking below current allocation runs the
    /// cleaner; if live data still does not fit, the caller must evict
    /// before the shrink can take effect (the budget is lowered regardless —
    /// `over_budget` reports the condition).
    pub fn set_budget_bytes(&mut self, budget_bytes: u64) {
        self.budget = budget_bytes;
        if self.allocated_bytes() > self.budget {
            self.clean();
        }
    }

    /// Whether live data exceeds the byte budget.
    ///
    /// Admission is accounted in live bytes; physical segments may
    /// transiently exceed the budget between cleaner passes.
    pub fn over_budget(&self) -> bool {
        self.live_bytes() > self.budget
    }

    /// Appends an entry, running the cleaner when the budget is tight.
    ///
    /// Fails with [`RcError::OutOfMemory`] if even after cleaning no segment
    /// can hold the entry, and with [`RcError::ObjectTooLarge`] if the entry
    /// exceeds the segment size.
    pub fn append(&mut self, key: Key, size: u64) -> Result<(), RcError> {
        if size > self.segment_bytes {
            return Err(RcError::ObjectTooLarge {
                size,
                max: self.segment_bytes,
            });
        }
        // Re-appending an existing key first retires the old entry.
        self.remove(&key);

        // Admission is byte-accounted against live data; segments are a
        // physical detail the cleaner keeps close to the live volume.
        if self.live_bytes() + size > self.budget {
            return Err(RcError::OutOfMemory {
                requested: size,
                available: self.budget.saturating_sub(self.live_bytes()),
            });
        }
        self.place(key, size, true);
        Ok(())
    }

    /// Appends a batch of entries, amortizing the cleaner over the whole
    /// batch (at most one compaction pass instead of one check per entry)
    /// — the log-side half of batched replication ([`crate::shard`]).
    ///
    /// Sizes are validated up front; a mid-batch [`RcError::OutOfMemory`]
    /// leaves the entries appended so far in place (each entry is an
    /// independent append, exactly as if issued through [`Log::append`]).
    pub fn append_batch(&mut self, entries: Vec<(Key, u64)>) -> Result<(), RcError> {
        for &(_, size) in &entries {
            if size > self.segment_bytes {
                return Err(RcError::ObjectTooLarge {
                    size,
                    max: self.segment_bytes,
                });
            }
        }
        let mut cleaned = false;
        for (key, size) in entries {
            self.remove(&key);
            if self.live_bytes() + size > self.budget {
                return Err(RcError::OutOfMemory {
                    requested: size,
                    available: self.budget.saturating_sub(self.live_bytes()),
                });
            }
            cleaned |= self.place(key, size, !cleaned);
        }
        Ok(())
    }

    /// Places one validated, budget-checked entry into the head segment,
    /// optionally allowed to run the cleaner first; reports whether it did.
    fn place(&mut self, key: Key, size: u64, may_clean: bool) -> bool {
        let mut cleaned = false;
        if self.fitting_head(size).is_none() && may_clean {
            // Prefer compaction over growing the physical footprint when
            // fragmentation has accumulated.
            if self.allocated_bytes() > self.live_bytes() + self.segment_bytes {
                self.clean();
                cleaned = true;
            }
        }
        let head = match self.fitting_head(size) {
            Some(h) => h,
            None => self.open_head_unchecked(),
        };
        // ofc-lint: allow(panic) reason=fitting_head/open_head_unchecked only return allocated slots
        let seg = self.segments[head].as_mut().expect("head is allocated");
        seg.insert(key, size);
        self.live_total += size;
        self.locations.insert(key, head);
        cleaned
    }

    /// Removes an entry; returns its size if it was present.
    pub fn remove(&mut self, key: &Key) -> Option<u64> {
        let seg_idx = self.locations.remove(key)?;
        let seg = self.segments[seg_idx]
            .as_mut()
            // ofc-lint: allow(panic) reason=locations only ever points at allocated segments
            .expect("location points at an allocated segment");
        // ofc-lint: allow(panic) reason=segment live maps mirror locations; a miss is heap corruption
        let size = seg.remove(key).expect("location is consistent");
        self.live_total -= size;
        // A fully dead, non-head segment is freed immediately.
        if seg.live.is_empty() && self.head != Some(seg_idx) {
            self.segments[seg_idx] = None;
        }
        Some(size)
    }

    /// Size of a live entry.
    pub fn size_of(&self, key: &Key) -> Option<u64> {
        let seg = self.locations.get(key)?;
        self.segments[*seg].as_ref()?.live.get(key).copied()
    }

    /// Iterates over live keys (unspecified order).
    pub fn keys(&self) -> impl Iterator<Item = &Key> {
        self.locations.keys()
    }

    /// Greedy cleaner: compacts segments in ascending utilization order by
    /// re-appending their live entries, freeing whole segments.
    pub fn clean(&mut self) -> CleanStats {
        self.cleaner_passes += 1;
        let mut stats = CleanStats::default();

        // An empty head segment is pure overhead: free it so a full shrink
        // can reach zero allocated segments.
        if let Some(h) = self.head {
            if self.segments[h].as_ref().is_some_and(|s| s.live.is_empty()) {
                self.segments[h] = None;
                self.head = None;
                stats.segments_freed += 1;
            }
        }

        // Candidates: allocated, not head, utilization < 1.
        let mut candidates: Vec<(usize, u64)> = self
            .segments
            .iter()
            .enumerate()
            .filter_map(|(i, s)| {
                let s = s.as_ref()?;
                if self.head == Some(i) || s.live_bytes() == s.used && s.used >= self.segment_bytes
                {
                    None
                } else {
                    Some((i, s.live_bytes()))
                }
            })
            .collect();
        candidates.sort_by_key(|&(_, live)| live);

        for (idx, _) in candidates {
            let Some(seg) = self.segments[idx].take() else {
                continue;
            };
            stats.segments_freed += 1;
            // Relocate live entries into the head (opening new heads as
            // needed within budget; the freed slot itself becomes available).
            for (key, size) in seg.live {
                self.locations.remove(&key);
                stats.bytes_relocated += size;
                let head = match self.fitting_head(size) {
                    Some(h) => h,
                    // Relocation may transiently exceed the budget (the
                    // cleaner's reserved segment); net allocation still
                    // shrinks because only fragmented segments are cleaned.
                    None => self.open_head_unchecked(),
                };
                // ofc-lint: allow(panic) reason=fitting_head/open_head_unchecked only return allocated slots
                let h = self.segments[head].as_mut().expect("head allocated");
                // Keys are Copy interned handles: relocation moves ids, no
                // allocation. Log-level live_total is unchanged (the bytes
                // stay live, only their segment changes).
                h.insert(key, size);
                self.locations.insert(key, head);
            }
        }
        stats
    }

    /// The head segment's index, if it is allocated and `size` fits.
    fn fitting_head(&self, size: u64) -> Option<usize> {
        let h = self.head?;
        let seg = self.segments[h].as_ref()?;
        (seg.used + size <= self.segment_bytes).then_some(h)
    }

    /// Opens a head segment without consulting the budget (cleaner use);
    /// returns the freshly allocated slot.
    fn open_head_unchecked(&mut self) -> usize {
        let slot = self
            .segments
            .iter()
            .position(Option::is_none)
            .unwrap_or_else(|| {
                self.segments.push(None);
                self.segments.len() - 1
            });
        self.segments[slot] = Some(Segment::default());
        self.head = Some(slot);
        slot
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(s: &str) -> Key {
        Key::from(s)
    }

    #[test]
    fn append_and_lookup() {
        let mut log = Log::new(100, 1000);
        log.append(key("a"), 30).unwrap();
        log.append(key("b"), 40).unwrap();
        assert_eq!(log.size_of(&key("a")), Some(30));
        assert_eq!(log.live_bytes(), 70);
        assert_eq!(log.live_entries(), 2);
        assert!(log.contains(&key("a")));
    }

    #[test]
    fn oversized_entry_rejected() {
        let mut log = Log::new(100, 1000);
        assert!(matches!(
            log.append(key("big"), 101),
            Err(RcError::ObjectTooLarge { .. })
        ));
    }

    #[test]
    fn remove_marks_dead_and_frees_empty_segments() {
        let mut log = Log::new(100, 1000);
        log.append(key("a"), 100).unwrap(); // fills segment 0
        log.append(key("b"), 100).unwrap(); // fills segment 1 (new head)
        assert_eq!(log.allocated_segments(), 2);
        assert_eq!(log.remove(&key("a")), Some(100));
        // Segment 0 is fully dead and not the head: freed eagerly.
        assert_eq!(log.allocated_segments(), 1);
        assert_eq!(log.remove(&key("a")), None);
    }

    #[test]
    fn budget_exhaustion_reports_oom() {
        let mut log = Log::new(100, 200); // 2 segments
        log.append(key("a"), 90).unwrap();
        log.append(key("b"), 90).unwrap();
        let err = log.append(key("c"), 50).unwrap_err();
        assert!(matches!(err, RcError::OutOfMemory { .. }));
    }

    #[test]
    fn cleaner_compacts_fragmentation() {
        let mut log = Log::new(100, 400);
        // Fill segments with pairs, then delete one of each pair: 50% dead.
        for i in 0..6 {
            log.append(key(&format!("k{i}")), 50).unwrap();
        }
        for i in [0, 2, 4] {
            log.remove(&key(&format!("k{i}")));
        }
        assert_eq!(log.live_bytes(), 150);
        assert_eq!(log.allocated_segments(), 3);
        // Appending past the fragmented head triggers compaction.
        log.append(key("new"), 60).unwrap();
        assert!(log.contains(&key("new")));
        assert!(log.cleaner_passes() >= 1);
        for i in [1, 3, 5] {
            assert!(log.contains(&key(&format!("k{i}"))), "k{i} lost by cleaner");
        }
        assert_eq!(log.live_bytes(), 210);
        // Physical footprint stays near the live volume.
        assert!(log.allocated_segments() <= 3);
    }

    #[test]
    fn append_batch_matches_sequential_appends() {
        let mut batched = Log::new(100, 1000);
        let mut sequential = Log::new(100, 1000);
        let entry = |i: u64| (key(&format!("k{i}")), 30 + i);
        batched.append_batch((0..8).map(entry).collect()).unwrap();
        for (k, size) in (0..8).map(entry) {
            sequential.append(k, size).unwrap();
        }
        assert_eq!(batched.live_bytes(), sequential.live_bytes());
        assert_eq!(batched.live_entries(), sequential.live_entries());
        for i in 0..8u64 {
            let k = key(&format!("k{i}"));
            assert_eq!(batched.size_of(&k), sequential.size_of(&k));
        }
    }

    #[test]
    fn append_batch_runs_the_cleaner_at_most_once() {
        let mut log = Log::new(100, 800);
        // Build fragmentation: half of every segment dies.
        for i in 0..8 {
            log.append(key(&format!("k{i}")), 50).unwrap();
        }
        for i in [0, 2, 4, 6] {
            log.remove(&key(&format!("k{i}")));
        }
        let passes_before = log.cleaner_passes();
        log.append_batch((0..4).map(|i| (key(&format!("n{i}")), 60)).collect())
            .unwrap();
        assert!(
            log.cleaner_passes() <= passes_before + 1,
            "one compaction pass amortized over the batch"
        );
        for i in [1, 3, 5, 7] {
            assert!(log.contains(&key(&format!("k{i}"))));
        }
        for i in 0..4 {
            assert!(log.contains(&key(&format!("n{i}"))));
        }
    }

    #[test]
    fn append_batch_validates_sizes_up_front() {
        let mut log = Log::new(100, 1000);
        let err = log
            .append_batch(vec![(key("ok"), 10), (key("big"), 101)])
            .unwrap_err();
        assert!(matches!(err, RcError::ObjectTooLarge { .. }));
        assert!(!log.contains(&key("ok")), "nothing applied on bad sizes");
    }

    #[test]
    fn reappend_replaces_old_entry() {
        let mut log = Log::new(100, 1000);
        log.append(key("a"), 30).unwrap();
        log.append(key("a"), 60).unwrap();
        assert_eq!(log.size_of(&key("a")), Some(60));
        assert_eq!(log.live_entries(), 1);
        assert_eq!(log.live_bytes(), 60);
    }

    #[test]
    fn shrink_budget_triggers_clean_and_flags_over_budget() {
        let mut log = Log::new(100, 400);
        for i in 0..4 {
            log.append(key(&format!("k{i}")), 100).unwrap();
        }
        assert_eq!(log.allocated_segments(), 4);
        // Kill half the data, then shrink to 200 bytes: fits.
        log.remove(&key("k0"));
        log.remove(&key("k1"));
        log.set_budget_bytes(200);
        assert!(!log.over_budget());
        assert!(log.allocated_segments() <= 2);
        // Shrink to 100 bytes while 200 live bytes remain: over budget until
        // the caller evicts.
        log.set_budget_bytes(100);
        assert!(log.over_budget());
    }

    #[test]
    fn utilization_tracks_liveness() {
        let mut log = Log::new(100, 1000);
        assert_eq!(log.utilization(), 1.0);
        log.append(key("a"), 50).unwrap();
        assert!((log.utilization() - 0.5).abs() < 1e-12);
        log.remove(&key("a"));
        // Head segment remains allocated but empty.
        assert_eq!(log.utilization(), 0.0);
    }

    #[test]
    fn keys_iterates_live_set() {
        let mut log = Log::new(100, 1000);
        log.append(key("a"), 10).unwrap();
        log.append(key("b"), 10).unwrap();
        log.remove(&key("a"));
        let keys: Vec<String> = log.keys().map(|k| k.to_string()).collect();
        assert_eq!(keys, vec!["b".to_string()]);
    }

    #[test]
    fn cleaner_preserves_all_live_data_under_churn() {
        let mut log = Log::new(64, 64 * 8);
        let mut expect = std::collections::HashMap::new();
        for round in 0..50u64 {
            let k = key(&format!("k{}", round % 12));
            let size = 8 + (round * 7) % 40;
            if round % 3 == 0 {
                log.remove(&k);
                expect.remove(&k);
            } else if log.append(k, size).is_ok() {
                expect.insert(k, size);
            }
        }
        for (k, &size) in &expect {
            assert_eq!(log.size_of(k), Some(size), "lost {k}");
        }
        assert_eq!(log.live_entries(), expect.len());
    }
}
