//! A single storage node: master (in-memory, log-structured) plus backup
//! (on-disk replica) roles, co-located with a FaaS invoker.

use crate::log::Log;
use crate::{AccessStats, Key, NodeId, RcError, Value};
use ofc_intern::IdHashMap;
use ofc_simtime::SimTime;
use std::collections::{BTreeMap, BTreeSet};
use std::time::Duration;

/// A master-copy record: payload, access statistics, dirtiness.
#[derive(Debug, Clone)]
pub struct MasterObject {
    /// The payload.
    pub value: Value,
    /// Access statistics (`n_access` / `t_access`, §6.3).
    pub stats: AccessStats,
    /// Dirty objects have not been persisted to the RSDS yet and must not
    /// be evicted before write-back (§6.4).
    pub dirty: bool,
    /// Owning tenant ([`crate::owner_of`] of the key), resolved once at
    /// insertion so the per-owner bookkeeping on the read path stays free
    /// of string work.
    pub owner: Key,
}

/// Access count at or above which an object can never become a periodic
/// eviction victim through the cold rule (§6.3: `n_access < 5`). The
/// [`crate::cluster::Cluster`] owner overrides this from the agent config.
pub const DEFAULT_COLD_ACCESS_THRESHOLD: u64 = 5;

/// One storage node.
#[derive(Debug)]
pub struct StorageNode {
    id: NodeId,
    log: Log,
    master: IdHashMap<Key, MasterObject>,
    /// Backup replicas held on disk for other nodes' masters.
    backup: IdHashMap<Key, Value>,
    up: bool,
    /// Eviction-candidate index, idle rule: every master keyed by
    /// `t_access`, so the stale prefix (`idle >= evict_idle`) is a range
    /// scan instead of a full sweep. `BTreeSet` keeps iteration
    /// deterministic.
    idle_index: BTreeSet<(SimTime, Key)>,
    /// Eviction-candidate index, cold rule: masters with `n_access <
    /// cold_threshold`, keyed by creation time. An object is pruned for
    /// good once its access count crosses the threshold (`n_access` only
    /// grows), so the index shrinks as the working set warms up.
    cold_index: BTreeSet<(SimTime, Key)>,
    /// `n_access` bound of `cold_index` membership.
    cold_threshold: u64,
    /// Per-tenant LRU sub-index: every master keyed `(owner, t_access,
    /// key)`, so one tenant's coldest objects are a prefix range scan of
    /// its own slice — the PR 5 eviction-index approach extended per
    /// tenant (quota reclamation never sweeps other tenants' objects).
    owner_idle: BTreeSet<(Key, SimTime, Key)>,
    /// Per-tenant live-byte accounting, charged exactly like the log
    /// (`size.max(1)`), so `Σ owner_usage == log.live_bytes()` is an
    /// invariant. O(log tenants) per mutation.
    owner_usage: BTreeMap<Key, u64>,
}

impl StorageNode {
    /// Creates a node with the given log geometry and pool size.
    pub fn new(id: NodeId, segment_bytes: u64, pool_bytes: u64) -> Self {
        StorageNode {
            id,
            log: Log::new(segment_bytes, pool_bytes),
            master: IdHashMap::default(),
            backup: IdHashMap::default(),
            up: true,
            idle_index: BTreeSet::new(),
            cold_index: BTreeSet::new(),
            cold_threshold: DEFAULT_COLD_ACCESS_THRESHOLD,
            owner_idle: BTreeSet::new(),
            owner_usage: BTreeMap::new(),
        }
    }

    /// This node's id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Whether the node is alive.
    pub fn is_up(&self) -> bool {
        self.up
    }

    /// Marks the node down (crash) or up (restart). A restarted node comes
    /// back empty — recovery repopulates it.
    pub fn set_up(&mut self, up: bool) {
        self.up = up;
        if !up {
            let budget = self.log.budget_bytes();
            self.log = Log::new(self.log.segment_bytes(), budget);
            self.master.clear();
            self.backup.clear();
            self.idle_index.clear();
            self.cold_index.clear();
            self.owner_idle.clear();
            self.owner_usage.clear();
        }
    }

    /// Memory pool size in bytes.
    pub fn pool_bytes(&self) -> u64 {
        self.log.budget_bytes()
    }

    /// Live master bytes in memory.
    pub fn used_bytes(&self) -> u64 {
        self.log.live_bytes()
    }

    /// Bytes available for new master copies (post-cleaning estimate).
    pub fn available_bytes(&self) -> u64 {
        self.pool_bytes().saturating_sub(self.used_bytes())
    }

    /// Adjusts the pool size (vertical scaling, §6.4). The caller is
    /// responsible for evicting/migrating first when shrinking; this method
    /// reports whether the log still exceeds the new budget.
    pub fn set_pool_bytes(&mut self, bytes: u64) -> bool {
        self.log.set_budget_bytes(bytes);
        self.log.over_budget()
    }

    /// Number of master objects.
    pub fn master_count(&self) -> usize {
        self.master.len()
    }

    /// Number of backup replicas held.
    pub fn backup_count(&self) -> usize {
        self.backup.len()
    }

    /// Whether this node masters `key`.
    pub fn has_master(&self, key: &Key) -> bool {
        self.master.contains_key(key)
    }

    /// Whether this node holds a backup replica of `key`.
    pub fn has_backup(&self, key: &Key) -> bool {
        self.backup.contains_key(key)
    }

    /// Inserts (or replaces) a master copy.
    pub fn insert_master(
        &mut self,
        key: Key,
        value: Value,
        now: SimTime,
        dirty: bool,
    ) -> Result<(), RcError> {
        if !self.up {
            return Err(RcError::NodeUnavailable(self.id));
        }
        self.log.append(key, value.size().max(1))?;
        if let Some((old_stats, old_owner, old_charge)) = self
            .master
            .get(&key)
            .map(|o| (o.stats, o.owner, o.value.size().max(1)))
        {
            self.unindex(&key, &old_stats);
            self.uncharge(old_owner, old_stats.t_access, &key, old_charge);
        }
        let owner = crate::owner_of(&key);
        self.idle_index.insert((now, key));
        if self.cold_threshold > 0 {
            self.cold_index.insert((now, key));
        }
        self.owner_idle.insert((owner, now, key));
        *self.owner_usage.entry(owner).or_insert(0) += value.size().max(1);
        self.master.insert(
            key,
            MasterObject {
                value,
                stats: AccessStats {
                    n_access: 0,
                    t_access: now,
                    created: now,
                },
                dirty,
                owner,
            },
        );
        Ok(())
    }

    /// Reads a master copy, bumping `n_access` / `t_access`.
    pub fn read_master(&mut self, key: &Key, now: SimTime) -> Option<&MasterObject> {
        if !self.up {
            return None;
        }
        let (prev_access, created, n_after, owner) = {
            let obj = self.master.get_mut(key)?;
            let prev = obj.stats.t_access;
            obj.stats.n_access += 1;
            obj.stats.t_access = now;
            (prev, obj.stats.created, obj.stats.n_access, obj.owner)
        };
        if prev_access != now {
            self.idle_index.remove(&(prev_access, *key));
            self.idle_index.insert((now, *key));
            self.owner_idle.remove(&(owner, prev_access, *key));
            self.owner_idle.insert((owner, now, *key));
        }
        if n_after == self.cold_threshold {
            // Crossed the §6.3 access bound: permanently out of the cold set.
            self.cold_index.remove(&(created, *key));
        }
        self.master.get(key)
    }

    /// Peeks at a master copy without touching the access statistics.
    pub fn peek_master(&self, key: &Key) -> Option<&MasterObject> {
        self.master.get(key)
    }

    /// Removes a master copy, returning it.
    pub fn remove_master(&mut self, key: &Key) -> Option<MasterObject> {
        self.log.remove(key);
        let obj = self.master.remove(key)?;
        self.unindex(key, &obj.stats);
        self.uncharge(obj.owner, obj.stats.t_access, key, obj.value.size().max(1));
        Some(obj)
    }

    /// Drops `key`'s entries from both eviction indexes.
    fn unindex(&mut self, key: &Key, stats: &AccessStats) {
        self.idle_index.remove(&(stats.t_access, *key));
        if stats.n_access < self.cold_threshold {
            self.cold_index.remove(&(stats.created, *key));
        }
    }

    /// Reverses one key's contribution to the per-owner structures.
    fn uncharge(&mut self, owner: Key, t_access: SimTime, key: &Key, charge: u64) {
        self.owner_idle.remove(&(owner, t_access, *key));
        if let Some(used) = self.owner_usage.get_mut(&owner) {
            *used = used.saturating_sub(charge);
            if *used == 0 {
                self.owner_usage.remove(&owner);
            }
        }
    }

    /// Live master bytes charged to `owner` on this node.
    pub fn owner_used(&self, owner: &Key) -> u64 {
        self.owner_usage.get(owner).copied().unwrap_or(0)
    }

    /// Per-owner live-byte accounting, ascending by owner.
    pub fn owner_usages(&self) -> impl Iterator<Item = (&Key, u64)> {
        self.owner_usage.iter().map(|(k, &v)| (k, v))
    }

    /// Up to `max` of `owner`'s masters in LRU order, with dirtiness and
    /// charged size — the quota-reclamation victim feed. Walks only the
    /// owner's slice of the per-tenant sub-index (O(log n + max)).
    pub fn owner_victims(&self, owner: &Key, max: usize) -> Vec<(Key, bool, u64, SimTime)> {
        let mut out = Vec::new();
        let from = (*owner, SimTime::ZERO, Key::from(""));
        for &(o, t_access, key) in self.owner_idle.range(from..) {
            if o != *owner || out.len() >= max {
                break;
            }
            let Some(obj) = self.master.get(&key) else {
                debug_assert!(false, "owner index references a missing master");
                continue;
            };
            out.push((key, obj.dirty, obj.value.size().max(1), t_access));
        }
        out
    }

    /// Re-bounds the cold eviction index at a new `n_access` threshold
    /// (pushed down from the agent's `evict_min_access`) and rebuilds it.
    pub fn set_cold_access_threshold(&mut self, min_access: u64) {
        self.cold_threshold = min_access;
        self.cold_index.clear();
        for (key, obj) in &self.master {
            if obj.stats.n_access < min_access {
                self.cold_index.insert((obj.stats.created, *key));
            }
        }
    }

    /// Periodic-eviction candidates (§6.3): masters idle for at least
    /// `min_idle`, plus masters older than `min_age` that never crossed the
    /// cold access threshold. Both come from ordered indexes, so only the
    /// expirable prefix is visited instead of every object; the returned
    /// count says how many index entries were inspected. Victims are
    /// key-sorted `(key, dirty)` pairs — deterministic regardless of hash
    /// map state.
    pub fn evict_candidates(
        &self,
        now: SimTime,
        min_age: Duration,
        min_idle: Duration,
    ) -> (Vec<(Key, bool)>, u64) {
        let mut visited = 0u64;
        // Borrow candidate keys while scanning; the owned clones happen
        // once, below, only for keys that actually survive as victims.
        let mut victims: BTreeMap<&Key, bool> = BTreeMap::new();
        for (t_access, key) in &self.idle_index {
            visited += 1;
            if now.saturating_since(*t_access) < min_idle {
                break; // Everything after this entry is younger.
            }
            let Some(obj) = self.master.get(key) else {
                debug_assert!(false, "idle index references a missing master");
                continue;
            };
            victims.insert(key, obj.dirty);
        }
        for (created, key) in &self.cold_index {
            visited += 1;
            if now.saturating_since(*created) < min_age {
                break; // Everything after this entry is within the grace period.
            }
            let Some(obj) = self.master.get(key) else {
                debug_assert!(false, "cold index references a missing master");
                continue;
            };
            victims.insert(key, obj.dirty);
        }
        let victims = victims.into_iter().map(|(k, d)| (*k, d)).collect();
        (victims, visited)
    }

    /// Sets the dirty flag of a master copy.
    pub fn set_dirty(&mut self, key: &Key, dirty: bool) -> Result<(), RcError> {
        match self.master.get_mut(key) {
            Some(o) => {
                o.dirty = dirty;
                Ok(())
            }
            None => Err(RcError::NotFound(*key)),
        }
    }

    /// Stores a backup replica (on disk; does not consume pool memory).
    pub fn store_backup(&mut self, key: Key, value: Value) {
        if self.up {
            self.backup.insert(key, value);
        }
    }

    /// Stores a batch of backup replicas in one coalesced disk append —
    /// the receiving end of a [`crate::shard::ReplicationBatcher`] flush.
    /// Entries land in order; a down node drops the batch (recovery
    /// re-creates the replicas from the master copies).
    pub fn store_backups(&mut self, entries: Vec<(Key, Value)>) {
        if !self.up {
            return;
        }
        for (key, value) in entries {
            self.backup.insert(key, value);
        }
    }

    /// Drops a backup replica.
    pub fn remove_backup(&mut self, key: &Key) -> Option<Value> {
        self.backup.remove(key)
    }

    /// Takes the backup copy for promotion to master on this node.
    ///
    /// This is the heart of migration-by-promotion (§6.4): the payload is
    /// already on this node's disk, so no network transfer happens.
    pub fn promote_backup(&mut self, key: &Key, now: SimTime, dirty: bool) -> Result<(), RcError> {
        let value = self
            .backup
            .get(key)
            .cloned()
            .ok_or(RcError::NoEligibleBackup(*key))?;
        self.insert_master(*key, value, now, dirty)?;
        self.backup.remove(key);
        Ok(())
    }

    /// Demotes the master copy to a backup replica (memory → disk).
    pub fn demote_to_backup(&mut self, key: &Key) -> Result<(), RcError> {
        let obj = self.remove_master(key).ok_or(RcError::NotFound(*key))?;
        self.backup.insert(*key, obj.value);
        Ok(())
    }

    /// Master keys in least-recently-used order (LRU eviction input, §6.4).
    pub fn lru_masters(&self) -> Vec<Key> {
        let mut keys: Vec<(&Key, SimTime)> = self
            .master
            .iter()
            .map(|(k, o)| (k, o.stats.t_access))
            .collect();
        // Compare by (time, key) without cloning the key per comparison.
        keys.sort_by(|a, b| (a.1, a.0).cmp(&(b.1, b.0)));
        keys.into_iter().map(|(k, _)| *k).collect()
    }

    /// Iterates over master entries.
    pub fn masters(&self) -> impl Iterator<Item = (&Key, &MasterObject)> {
        self.master.iter()
    }

    /// Iterates over backup keys.
    pub fn backups(&self) -> impl Iterator<Item = &Key> {
        self.backup.keys()
    }

    /// Log utilization (cleaner effectiveness metric).
    pub fn log_utilization(&self) -> f64 {
        self.log.utilization()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(s: &str) -> Key {
        Key::from(s)
    }

    fn node() -> StorageNode {
        StorageNode::new(0, 1 << 20, 8 << 20)
    }

    #[test]
    fn master_lifecycle() {
        let mut n = node();
        n.insert_master(key("a"), Value::synthetic(1000), SimTime::ZERO, false)
            .unwrap();
        assert!(n.has_master(&key("a")));
        assert_eq!(n.used_bytes(), 1000);
        let obj = n.read_master(&key("a"), SimTime::from_secs(5)).unwrap();
        assert_eq!(obj.stats.n_access, 1);
        assert_eq!(obj.stats.t_access, SimTime::from_secs(5));
        let removed = n.remove_master(&key("a")).unwrap();
        assert_eq!(removed.value.size(), 1000);
        assert_eq!(n.used_bytes(), 0);
    }

    #[test]
    fn peek_does_not_touch_stats() {
        let mut n = node();
        n.insert_master(key("a"), Value::synthetic(10), SimTime::ZERO, false)
            .unwrap();
        n.peek_master(&key("a")).unwrap();
        assert_eq!(n.peek_master(&key("a")).unwrap().stats.n_access, 0);
    }

    #[test]
    fn pool_exhaustion() {
        let mut n = StorageNode::new(0, 1 << 20, 2 << 20);
        n.insert_master(key("a"), Value::synthetic(1 << 20), SimTime::ZERO, false)
            .unwrap();
        n.insert_master(key("b"), Value::synthetic(1 << 20), SimTime::ZERO, false)
            .unwrap();
        let err = n
            .insert_master(key("c"), Value::synthetic(1 << 20), SimTime::ZERO, false)
            .unwrap_err();
        assert!(matches!(err, RcError::OutOfMemory { .. }));
    }

    #[test]
    fn store_backups_lands_batch_in_order_and_skips_down_nodes() {
        let mut n = node();
        n.store_backups(vec![
            (key("a"), Value::synthetic(1)),
            (key("b"), Value::synthetic(2)),
        ]);
        assert!(n.has_backup(&key("a")) && n.has_backup(&key("b")));
        assert_eq!(n.backup_count(), 2);
        n.set_up(false);
        n.store_backups(vec![(key("c"), Value::synthetic(3))]);
        assert_eq!(n.backup_count(), 0, "down node drops the batch");
    }

    #[test]
    fn promotion_and_demotion_round_trip() {
        let mut n = node();
        n.store_backup(key("a"), Value::synthetic(500));
        assert!(n.has_backup(&key("a")));
        n.promote_backup(&key("a"), SimTime::ZERO, false).unwrap();
        assert!(n.has_master(&key("a")));
        assert!(!n.has_backup(&key("a")));
        n.demote_to_backup(&key("a")).unwrap();
        assert!(!n.has_master(&key("a")));
        assert!(n.has_backup(&key("a")));
        assert_eq!(n.used_bytes(), 0);
    }

    #[test]
    fn promote_without_backup_fails() {
        let mut n = node();
        assert!(matches!(
            n.promote_backup(&key("zzz"), SimTime::ZERO, false),
            Err(RcError::NoEligibleBackup(_))
        ));
    }

    #[test]
    fn lru_order_follows_access_times() {
        let mut n = node();
        for (i, name) in ["a", "b", "c"].iter().enumerate() {
            n.insert_master(
                key(name),
                Value::synthetic(10),
                SimTime::from_secs(i as u64),
                false,
            )
            .unwrap();
        }
        // Touch "a" last.
        n.read_master(&key("a"), SimTime::from_secs(100));
        let lru = n.lru_masters();
        assert_eq!(lru[0], key("b"));
        assert_eq!(lru[2], key("a"));
    }

    #[test]
    fn crash_clears_state() {
        let mut n = node();
        n.insert_master(key("a"), Value::synthetic(10), SimTime::ZERO, false)
            .unwrap();
        n.store_backup(key("b"), Value::synthetic(10));
        n.set_up(false);
        assert!(!n.is_up());
        assert_eq!(n.master_count(), 0);
        assert_eq!(n.backup_count(), 0);
        assert!(n
            .insert_master(key("c"), Value::synthetic(1), SimTime::ZERO, false)
            .is_err());
        n.set_up(true);
        assert!(n
            .insert_master(key("c"), Value::synthetic(1), SimTime::ZERO, false)
            .is_ok());
    }

    #[test]
    fn dirty_flag_toggles() {
        let mut n = node();
        n.insert_master(key("a"), Value::synthetic(10), SimTime::ZERO, true)
            .unwrap();
        assert!(n.peek_master(&key("a")).unwrap().dirty);
        n.set_dirty(&key("a"), false).unwrap();
        assert!(!n.peek_master(&key("a")).unwrap().dirty);
        assert!(n.set_dirty(&key("zz"), true).is_err());
    }

    #[test]
    fn evict_candidates_selects_cold_and_stale_only() {
        let mut n = node();
        let (grace, idle) = (Duration::from_secs(300), Duration::from_secs(1800));
        // Never read, past the grace period: cold victim.
        n.insert_master(key("cold"), Value::synthetic(10), SimTime::ZERO, true)
            .unwrap();
        // Crosses the access threshold early, read again recently: survives.
        n.insert_master(key("hot"), Value::synthetic(10), SimTime::ZERO, false)
            .unwrap();
        for s in 1..=5 {
            n.read_master(&key("hot"), SimTime::from_secs(s));
        }
        n.read_master(&key("hot"), SimTime::from_secs(390));
        // Unread but still within the grace period: survives.
        n.insert_master(
            key("young"),
            Value::synthetic(10),
            SimTime::from_secs(200),
            false,
        )
        .unwrap();
        let (victims, _) = n.evict_candidates(SimTime::from_secs(400), grace, idle);
        assert_eq!(victims, vec![(key("cold"), true)]);
        // Much later the hot object is stale (idle >= 30 min) and the
        // young one has aged past the grace period.
        let (victims, _) = n.evict_candidates(SimTime::from_secs(4000), grace, idle);
        let keys: Vec<Key> = victims.iter().map(|(k, _)| *k).collect();
        assert_eq!(keys, vec![key("cold"), key("hot"), key("young")]);
    }

    #[test]
    fn evict_candidates_visits_only_the_expirable_prefix() {
        let mut n = node();
        let (grace, idle) = (Duration::from_secs(300), Duration::from_secs(1800));
        // 50 objects that crossed the access threshold and were read
        // recently: out of the cold index, deep in the idle index.
        for i in 0..50 {
            let k = key(&format!("hot{i}"));
            n.insert_master(k, Value::synthetic(10), SimTime::ZERO, false)
                .unwrap();
            for s in 0..5 {
                n.read_master(&k, SimTime::from_secs(3500 + s));
            }
        }
        // One genuinely cold object.
        n.insert_master(key("cold"), Value::synthetic(10), SimTime::ZERO, false)
            .unwrap();
        let (victims, visited) = n.evict_candidates(SimTime::from_secs(3600), grace, idle);
        assert_eq!(victims, vec![(key("cold"), false)]);
        // One stale hit + one non-match per index, not a 51-object sweep.
        assert!(visited <= 4, "visited {visited} entries");
    }

    #[test]
    fn evict_candidates_matches_full_scan_reference() {
        let mut n = node();
        let (grace, idle) = (Duration::from_secs(300), Duration::from_secs(1800));
        for i in 0..40u64 {
            let k = key(&format!("k{i}"));
            n.insert_master(
                k,
                Value::synthetic(10),
                SimTime::from_secs(i * 37),
                i % 3 == 0,
            )
            .unwrap();
            for r in 0..(i % 9) {
                n.read_master(&k, SimTime::from_secs(i * 37 + r + 1));
            }
        }
        let now = SimTime::from_secs(1200);
        let mut reference: Vec<(Key, bool)> = n
            .masters()
            .filter(|(_, o)| {
                let cold = o.stats.n_access < DEFAULT_COLD_ACCESS_THRESHOLD
                    && now.saturating_since(o.stats.created) >= grace;
                let stale = now.saturating_since(o.stats.t_access) >= idle;
                cold || stale
            })
            .map(|(k, o)| (*k, o.dirty))
            .collect();
        reference.sort();
        let (victims, _) = n.evict_candidates(now, grace, idle);
        assert_eq!(victims, reference);
    }

    #[test]
    fn cold_threshold_rebuild_reindexes_existing_masters() {
        let mut n = node();
        n.insert_master(key("a"), Value::synthetic(10), SimTime::ZERO, false)
            .unwrap();
        for s in 1..=2 {
            n.read_master(&key("a"), SimTime::from_secs(s));
        }
        // With the bound lowered to 2, "a" (n_access = 2) is warm enough.
        n.set_cold_access_threshold(2);
        let (victims, _) = n.evict_candidates(
            SimTime::from_secs(4000),
            Duration::from_secs(300),
            Duration::from_secs(86400),
        );
        assert!(victims.is_empty());
        // Raising it back makes "a" cold again.
        n.set_cold_access_threshold(5);
        let (victims, _) = n.evict_candidates(
            SimTime::from_secs(4000),
            Duration::from_secs(300),
            Duration::from_secs(86400),
        );
        assert_eq!(victims.len(), 1);
    }

    #[test]
    fn shrink_pool_reports_over_budget() {
        let mut n = StorageNode::new(0, 1 << 20, 4 << 20);
        for i in 0..3 {
            n.insert_master(
                key(&format!("k{i}")),
                Value::synthetic(1 << 20),
                SimTime::ZERO,
                false,
            )
            .unwrap();
        }
        // Shrinking to 1 MB cannot fit 3 MB of live data.
        assert!(n.set_pool_bytes(1 << 20));
        // Evicting two objects resolves it.
        n.remove_master(&key("k0"));
        n.remove_master(&key("k1"));
        assert!(!n.set_pool_bytes(1 << 20));
    }
}
