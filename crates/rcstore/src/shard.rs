//! Sharded routing and batched replication for the cluster data plane.
//!
//! The coordinator maps every key to one of N **shards** through a seeded,
//! stable hash ([`ShardRouter`]): the mapping depends only on the key bytes
//! and the configured seed, never on process hash state, so placements are
//! reproducible across runs (the determinism contract of the whole
//! simulator). Each shard anchors its masters on a home node
//! (`shard % nodes`), which turns the tablet map into per-shard ranges the
//! way RAMCloud partitions its key space across masters.
//!
//! Replication traffic is coalesced per `(shard, backup)` pair by the
//! [`ReplicationBatcher`]: instead of one synchronous backup RPC per write,
//! pending replica payloads accumulate in a buffer that is flushed either
//! when it reaches `batch_max_entries` or on the periodic sim-clock flush
//! tick ([`crate::cluster::Cluster::flush_replication`]). Acked writes are
//! never lost to batching: the coordinator owns the buffers (they survive
//! node crashes) and every structural operation — crash, drain, restart,
//! migration — flushes before mutating placement.
//!
//! With `shards == 1` and `batch_max_entries == 1` (the defaults) both
//! mechanisms are inert and the cluster behaves byte-identically to the
//! unsharded data plane.

use crate::{Key, NodeId, Value};
use std::collections::BTreeMap;

/// Identifier of a shard (a contiguous slice of the key space).
pub type ShardId = usize;

/// Default seed of the router's key→shard mapping ("OFC1").
pub const DEFAULT_ROUTER_SEED: u64 = 0x4f46_4331;

/// Sharding and replication-batching knobs of the data plane.
#[derive(Debug, Clone)]
pub struct ShardConfig {
    /// Number of shards the key space is split into. 1 disables sharding.
    pub shards: usize,
    /// Seed of the stable key→shard mapping.
    pub router_seed: u64,
    /// Replica writes buffered per `(shard, backup)` pair before an
    /// automatic flush. 1 disables batching (every write replicates
    /// synchronously, as without this module).
    pub batch_max_entries: usize,
}

impl Default for ShardConfig {
    fn default() -> Self {
        ShardConfig {
            shards: 1,
            router_seed: DEFAULT_ROUTER_SEED,
            batch_max_entries: 1,
        }
    }
}

impl ShardConfig {
    /// Whether replica writes are coalesced rather than synchronous.
    pub fn batching(&self) -> bool {
        self.batch_max_entries > 1
    }
}

/// Stable key→shard mapping: seeded FNV-1a over the key bytes with a final
/// avalanche, reduced modulo the shard count. Independent of process hash
/// state — the same `(seed, key)` always lands on the same shard.
#[derive(Debug, Clone)]
pub struct ShardRouter {
    shards: usize,
    seed: u64,
}

impl ShardRouter {
    /// Builds a router over `shards` shards.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    pub fn new(shards: usize, seed: u64) -> Self {
        assert!(shards > 0, "router needs at least one shard");
        ShardRouter { shards, seed }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The shard owning `key`. Total: every key maps to exactly one shard
    /// in `0..shards`.
    pub fn shard_of(&self, key: &Key) -> ShardId {
        if self.shards == 1 {
            return 0;
        }
        let mut h = 0xcbf2_9ce4_8422_2325u64 ^ self.seed;
        for &b in key.as_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        // FNV mixes the low bits poorly; avalanche before the modulo so
        // short numeric suffixes spread evenly across shards.
        h ^= h >> 33;
        h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
        h ^= h >> 33;
        (h % self.shards as u64) as ShardId
    }
}

/// A drained replica buffer: its `(shard, backup)` pair and the pending
/// entries, in insertion order.
pub type DrainedBuffer = ((ShardId, NodeId), Vec<(Key, Value)>);

/// Coordinator-side buffers of pending replica writes, keyed by
/// `(shard, backup)` pair.
///
/// Buffers keep insertion order and hold at most one entry per key (a
/// re-enqueue of a key overwrites its pending payload in place), so a flush
/// applies each key's newest value exactly once — appends within a key are
/// never reordered. The `BTreeMap` keying makes full drains flush pairs in
/// deterministic order.
#[derive(Debug, Default)]
pub struct ReplicationBatcher {
    buffers: BTreeMap<(ShardId, NodeId), Vec<(Key, Value)>>,
}

impl ReplicationBatcher {
    /// An empty batcher.
    pub fn new() -> Self {
        ReplicationBatcher::default()
    }

    /// Buffers a replica write of `key` towards `backup`; returns the
    /// buffer's length so the caller can flush at its threshold. A pending
    /// entry for the same key is overwritten in place (last write wins).
    pub fn enqueue(&mut self, shard: ShardId, backup: NodeId, key: Key, value: Value) -> usize {
        let buf = self.buffers.entry((shard, backup)).or_default();
        match buf.iter_mut().find(|(k, _)| *k == key) {
            Some(slot) => slot.1 = value,
            None => buf.push((key, value)),
        }
        buf.len()
    }

    /// Takes (and empties) the buffer of one `(shard, backup)` pair.
    pub fn take(&mut self, shard: ShardId, backup: NodeId) -> Vec<(Key, Value)> {
        self.buffers.remove(&(shard, backup)).unwrap_or_default()
    }

    /// Drains every buffer, in deterministic `(shard, backup)` order.
    pub fn drain(&mut self) -> Vec<DrainedBuffer> {
        std::mem::take(&mut self.buffers).into_iter().collect()
    }

    /// Drops every pending entry of `key` (the object was deleted or
    /// overwritten at the coordinator — a later flush must not resurrect
    /// it).
    pub fn purge_key(&mut self, key: &Key) {
        for buf in self.buffers.values_mut() {
            buf.retain(|(k, _)| k != key);
        }
        self.buffers.retain(|_, buf| !buf.is_empty());
    }

    /// Total pending entries across all buffers.
    pub fn pending_entries(&self) -> usize {
        self.buffers.values().map(Vec::len).sum()
    }

    /// Whether nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.buffers.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(s: &str) -> Key {
        Key::from(s)
    }

    #[test]
    fn single_shard_short_circuits() {
        let r = ShardRouter::new(1, DEFAULT_ROUTER_SEED);
        for i in 0..100 {
            assert_eq!(r.shard_of(&key(&format!("k{i}"))), 0);
        }
    }

    #[test]
    fn mapping_is_total_and_stable() {
        let a = ShardRouter::new(8, 42);
        let b = ShardRouter::new(8, 42);
        for i in 0..1000 {
            let k = key(&format!("bucket/object-{i}"));
            let s = a.shard_of(&k);
            assert!(s < 8);
            assert_eq!(s, b.shard_of(&k), "same seed, same mapping");
        }
    }

    #[test]
    fn different_seeds_give_different_mappings() {
        let a = ShardRouter::new(16, 1);
        let b = ShardRouter::new(16, 2);
        let diverging = (0..256)
            .filter(|i| {
                let k = key(&format!("k{i}"));
                a.shard_of(&k) != b.shard_of(&k)
            })
            .count();
        assert!(diverging > 64, "only {diverging}/256 keys moved");
    }

    #[test]
    fn balance_within_2x_of_ideal() {
        let r = ShardRouter::new(8, DEFAULT_ROUTER_SEED);
        let mut counts = [0usize; 8];
        let n = 4096;
        for i in 0..n {
            counts[r.shard_of(&key(&format!("obj/{i}")))] += 1;
        }
        let ideal = n / 8;
        for (shard, &c) in counts.iter().enumerate() {
            assert!(
                c <= 2 * ideal && c >= ideal / 2,
                "shard {shard} holds {c} of {n} keys (ideal {ideal})"
            );
        }
    }

    #[test]
    fn batcher_keeps_one_entry_per_key_with_last_write_winning() {
        let mut b = ReplicationBatcher::new();
        assert_eq!(b.enqueue(0, 1, key("a"), Value::synthetic(10)), 1);
        assert_eq!(b.enqueue(0, 1, key("b"), Value::synthetic(20)), 2);
        // Re-enqueue of "a" overwrites in place: length stays 2.
        assert_eq!(b.enqueue(0, 1, key("a"), Value::synthetic(30)), 2);
        let entries = b.take(0, 1);
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].0, key("a"));
        assert_eq!(entries[0].1.size(), 30, "newest value");
        assert_eq!(entries[1].0, key("b"));
        assert!(b.is_empty());
    }

    #[test]
    fn purge_key_drops_pending_entries_everywhere() {
        let mut b = ReplicationBatcher::new();
        b.enqueue(0, 1, key("a"), Value::synthetic(1));
        b.enqueue(0, 2, key("a"), Value::synthetic(1));
        b.enqueue(1, 1, key("b"), Value::synthetic(1));
        b.purge_key(&key("a"));
        assert_eq!(b.pending_entries(), 1);
        assert_eq!(b.take(1, 1).len(), 1);
        assert!(b.is_empty());
    }

    #[test]
    fn drain_returns_pairs_in_deterministic_order() {
        let mut b = ReplicationBatcher::new();
        b.enqueue(3, 0, key("x"), Value::synthetic(1));
        b.enqueue(0, 2, key("y"), Value::synthetic(1));
        b.enqueue(0, 1, key("z"), Value::synthetic(1));
        let pairs: Vec<(ShardId, NodeId)> = b.drain().into_iter().map(|(p, _)| p).collect();
        assert_eq!(pairs, vec![(0, 1), (0, 2), (3, 0)]);
        assert!(b.is_empty());
    }
}
