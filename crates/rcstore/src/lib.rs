//! RAMCloud-model distributed in-memory key-value store — the substrate of
//! OFC's cache (§6.1).
//!
//! Each FaaS worker co-hosts a storage node comprising a **master** (the
//! in-memory, log-structured primary copy of some objects) and a **backup**
//! (on-disk replicas of other nodes' objects). A **coordinator** maintains
//! the key→master map. The pieces OFC extends are implemented faithfully:
//!
//! * per-object **access statistics** (`n_access` counter and `t_access`
//!   last-access epoch) driving the periodic eviction policy (§6.3),
//! * **vertical scaling** of each node's memory pool — OFC donates the
//!   memory left over by sandbox right-sizing and reclaims it on demand
//!   (§6.4),
//! * **migration by promotion** (§6.4): instead of copying an evicted-but-hot
//!   object to a new master, a backup node already holding an on-disk
//!   replica is promoted to master and the old master demotes itself to
//!   backup — no inter-node transfer of the payload,
//! * **crash recovery** from backups, preserving the replication factor.
//!
//! The store is deliberately time-functional: every operation returns its
//! modelled latency (see [`latency::RcLatency`], calibrated to §7.2.1's
//! measurements) and the caller advances the simulation clock.
//!
//! # Examples
//!
//! ```
//! use ofc_rcstore::cluster::Cluster;
//! use ofc_rcstore::{ClusterConfig, Value};
//! use ofc_simtime::SimTime;
//!
//! let mut cluster = Cluster::new(ClusterConfig {
//!     nodes: 3,
//!     replication_factor: 2,
//!     node_pool_bytes: 64 << 20,
//!     ..ClusterConfig::default()
//! });
//! let key = ofc_rcstore::Key::from("imgs/cat.png");
//! cluster
//!     .write(0, &key, Value::synthetic(4096), SimTime::ZERO)
//!     .result
//!     .unwrap();
//! let read = cluster.read(0, &key, SimTime::from_millis(1));
//! assert!(read.result.is_ok());
//! ```

pub mod cluster;
pub mod gossip;
pub mod latency;
pub mod log;
pub mod node;
pub mod raft;
pub mod shard;
pub mod txn;

use bytes::Bytes;
use ofc_simtime::SimTime;
use std::fmt;
use std::time::Duration;

/// A cache key (OFC uses `bucket/key` object paths).
///
/// Interned: `Key` is a 16-byte `Copy` handle whose equality and hash
/// resolve through a `u32` slab id while comparison still follows the
/// resolved string (see `ofc_intern::Istr` and DESIGN.md §17).
pub type Key = ofc_intern::Istr;

/// Identifier of a storage node (co-located with a FaaS invoker).
pub type NodeId = usize;

/// Resolves the owning tenant of a cache key: the bucket component of the
/// `bucket/key` object path (the whole key when there is no `/`).
///
/// Tenant attribution is by bucket: workloads wanting per-tenant quota
/// accounting place each tenant's objects in tenant-named buckets (the
/// mega scenario does; the paper-mix buckets like `outputs` simply act as
/// one shared pseudo-tenant). The substring is interned, so repeat
/// resolutions of the same bucket are a hash probe, not an allocation.
pub fn owner_of(key: &Key) -> Key {
    let s = key.as_str();
    match s.find('/') {
        Some(i) => Key::from(&s[..i]),
        None => *key,
    }
}

/// A stored value: its size always, its bytes optionally (simulated
/// workloads keep payloads synthetic so long runs stay small).
#[derive(Debug, Clone, PartialEq)]
pub struct Value {
    size: u64,
    bytes: Option<Bytes>,
}

impl Value {
    /// A synthetic value of `size` bytes.
    pub fn synthetic(size: u64) -> Self {
        Value { size, bytes: None }
    }

    /// A value with real bytes.
    pub fn data(bytes: Bytes) -> Self {
        Value {
            size: bytes.len() as u64,
            bytes: Some(bytes),
        }
    }

    /// Size in bytes.
    pub fn size(&self) -> u64 {
        self.size
    }

    /// The materialized bytes, if any.
    pub fn bytes(&self) -> Option<&Bytes> {
        self.bytes.as_ref()
    }
}

/// Where a read was served from (drives the LH/RH/M scenarios of Figure 7).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadLocality {
    /// Master copy on the requesting node.
    LocalHit,
    /// Master copy on another node (one network round trip).
    RemoteHit,
}

/// Per-object access statistics — the RAMCloud extension OFC adds (§6.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessStats {
    /// Number of reads since insertion (`n_access`).
    pub n_access: u64,
    /// Epoch of the last read (`t_access`).
    pub t_access: SimTime,
    /// Epoch of insertion.
    pub created: SimTime,
}

/// Errors from the cache store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RcError {
    /// Key has no master copy in the cluster.
    NotFound(Key),
    /// Not enough memory in the target node's pool.
    OutOfMemory {
        /// Bytes requested.
        requested: u64,
        /// Bytes available in the pool.
        available: u64,
    },
    /// Object exceeds the configured maximum object size.
    ObjectTooLarge {
        /// Object size.
        size: u64,
        /// Maximum allowed.
        max: u64,
    },
    /// Eviction refused: the object is dirty (not yet persisted upstream).
    Dirty(Key),
    /// No backup node is eligible for a promotion/recovery.
    NoEligibleBackup(Key),
    /// Referenced node does not exist or is down.
    NodeUnavailable(NodeId),
    /// Data was lost (all replicas gone) during recovery.
    DataLost {
        /// Number of objects lost.
        objects: usize,
    },
    /// Transient fault (injected or environmental); the operation may
    /// succeed if retried.
    Transient,
}

impl RcError {
    /// Whether the error is transient — safe to retry or to degrade
    /// around (bypass to the RSDS) rather than treat as data corruption.
    pub fn is_transient(&self) -> bool {
        matches!(self, RcError::Transient | RcError::NodeUnavailable(_))
    }
}

impl fmt::Display for RcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RcError::NotFound(k) => write!(f, "key {k} not found"),
            RcError::OutOfMemory {
                requested,
                available,
            } => write!(f, "out of memory: need {requested} B, have {available} B"),
            RcError::ObjectTooLarge { size, max } => {
                write!(f, "object of {size} B exceeds max {max} B")
            }
            RcError::Dirty(k) => write!(f, "cannot evict dirty object {k}"),
            RcError::NoEligibleBackup(k) => write!(f, "no eligible backup for {k}"),
            RcError::NodeUnavailable(n) => write!(f, "node {n} unavailable"),
            RcError::DataLost { objects } => write!(f, "{objects} objects lost"),
            RcError::Transient => write!(f, "transient store error"),
        }
    }
}

impl std::error::Error for RcError {}

/// Outcome of a store operation: result plus modelled latency.
#[derive(Debug)]
pub struct Timed<T> {
    /// The operation result.
    pub result: T,
    /// Modelled latency to charge to virtual time.
    pub latency: Duration,
}

impl<T> Timed<T> {
    /// Wraps a result with its latency.
    pub fn new(result: T, latency: Duration) -> Self {
        Timed { result, latency }
    }
}

/// Cluster-level configuration.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of storage nodes.
    pub nodes: usize,
    /// Number of backup replicas per object (in addition to the master
    /// copy). RAMCloud's default is 3; the paper's testbed uses 2.
    pub replication_factor: usize,
    /// Initial memory pool per node, in bytes.
    pub node_pool_bytes: u64,
    /// Maximum object size (OFC raises RAMCloud's 1 MB default to 10 MB).
    pub max_object_bytes: u64,
    /// Log segment size for the master's log-structured memory.
    pub segment_bytes: u64,
    /// Latency model.
    pub latency: latency::RcLatency,
    /// Sharding and batched-replication knobs (defaults keep both off,
    /// preserving the unsharded data plane byte for byte).
    pub shard: shard::ShardConfig,
    /// Replicated-coordinator knobs (the default single replica keeps the
    /// legacy in-memory authority byte for byte).
    pub raft: raft::RaftConfig,
    /// Gossip-membership knobs (disabled by default: the coordinator
    /// keeps its omniscient crash/restart view).
    pub gossip: gossip::GossipConfig,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            nodes: 4,
            replication_factor: 2,
            node_pool_bytes: 256 << 20,
            max_object_bytes: 10 << 20,
            segment_bytes: 16 << 20,
            latency: latency::RcLatency::default(),
            shard: shard::ShardConfig::default(),
            raft: raft::RaftConfig::default(),
            gossip: gossip::GossipConfig::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_constructors() {
        assert_eq!(Value::synthetic(7).size(), 7);
        assert!(Value::synthetic(7).bytes().is_none());
        let v = Value::data(Bytes::from_static(b"hello"));
        assert_eq!(v.size(), 5);
        assert_eq!(v.bytes().unwrap().as_ref(), b"hello");
    }

    #[test]
    fn errors_render() {
        let e = RcError::OutOfMemory {
            requested: 100,
            available: 10,
        };
        assert!(e.to_string().contains("100"));
        assert!(RcError::Dirty(Key::from("a/b")).to_string().contains("a/b"));
    }

    #[test]
    fn default_config_is_sane() {
        let c = ClusterConfig::default();
        assert!(c.replication_factor < c.nodes);
        assert!(c.max_object_bytes <= c.segment_bytes);
    }
}
