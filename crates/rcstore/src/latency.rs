//! Latency model of the cache store, calibrated to the paper's §7.2.1
//! micro-measurements.
//!
//! The constants reproduce:
//!
//! * pool rescale without data movement ≈ **289 µs** (scenario Sc1),
//! * rescale with eviction ≈ **373 µs** (Sc3),
//! * migration-by-promotion ≈ `0.18 ms @ 8 MB … 13.5 ms @ 1 GB` — a base of
//!   ~75 µs plus ~13.2 µs per migrated MB,
//! * sub-millisecond cache reads (the LH bars of Figure 7), with remote hits
//!   paying roughly +2 ms of network/proxy overhead for small objects
//!   (wand_denoise 1 kB: 19.6 ms → 22.1 ms).

use std::time::Duration;

/// Tunable latency constants of the store.
#[derive(Debug, Clone)]
pub struct RcLatency {
    /// Base latency of a local (same-node) read.
    pub local_read_base: Duration,
    /// Extra latency of a remote read (network + proxy hop).
    pub remote_extra: Duration,
    /// Memory bandwidth for payload copies, bytes per second.
    pub mem_bw: f64,
    /// Network bandwidth between nodes, bytes per second (10 GbE).
    pub net_bw: f64,
    /// Base latency of a write (master append + backup acks).
    pub write_base: Duration,
    /// The backup-ack share of `write_base`: what a batched write shaves
    /// off the critical path by deferring replica acks to the flush
    /// (see [`crate::shard`]).
    pub replication_ack: Duration,
    /// Base cost of a pool rescale without data movement (Sc1).
    pub rescale_base: Duration,
    /// Extra cost of a rescale that evicts objects (Sc3 − Sc1).
    pub evict_extra: Duration,
    /// Base cost of one migration-by-promotion.
    pub promote_base: Duration,
    /// Promotion bandwidth (backup image load into memory), bytes/second.
    /// Calibrated from §7.2.1: 1 GB migrates in 13.5 ms ≈ 80 GB/s.
    pub promote_bw: f64,
    /// Base latency of a delete.
    pub delete_base: Duration,
}

impl Default for RcLatency {
    fn default() -> Self {
        RcLatency {
            local_read_base: Duration::from_micros(120),
            remote_extra: Duration::from_micros(2000),
            mem_bw: 8e9,
            net_bw: 1.25e9,
            write_base: Duration::from_micros(180),
            replication_ack: Duration::from_micros(120),
            rescale_base: Duration::from_micros(289),
            evict_extra: Duration::from_micros(84),
            promote_base: Duration::from_micros(75),
            promote_bw: 80e9,
            delete_base: Duration::from_micros(90),
        }
    }
}

impl RcLatency {
    /// Latency of a read of `size` bytes, local or remote.
    pub fn read(&self, size: u64, remote: bool) -> Duration {
        let mut d = self.local_read_base + Duration::from_secs_f64(size as f64 / self.mem_bw);
        if remote {
            d += self.remote_extra + Duration::from_secs_f64(size as f64 / self.net_bw);
        }
        d
    }

    /// Latency of a write of `size` bytes (master append + replication,
    /// remote adds the client→master hop).
    pub fn write(&self, size: u64, remote: bool) -> Duration {
        let mut d = self.write_base + Duration::from_secs_f64(size as f64 / self.mem_bw);
        if remote {
            d += self.remote_extra + Duration::from_secs_f64(size as f64 / self.net_bw);
        }
        d
    }

    /// Latency of a write whose replica acks are deferred to a batched
    /// flush: the synchronous path keeps only the master append, shaving
    /// `replication_ack` off [`RcLatency::write`].
    pub fn write_batched(&self, size: u64, remote: bool) -> Duration {
        self.write(size, remote)
            .saturating_sub(self.replication_ack)
    }

    /// Latency of a migration-by-promotion of `size` bytes.
    pub fn promote(&self, size: u64) -> Duration {
        self.promote_base + Duration::from_secs_f64(size as f64 / self.promote_bw)
    }

    /// Latency of a pool rescale; `evicted` reports whether objects were
    /// dropped.
    pub fn rescale(&self, evicted: bool) -> Duration {
        if evicted {
            self.rescale_base + self.evict_extra
        } else {
            self.rescale_base
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn promotion_matches_paper_points() {
        let m = RcLatency::default();
        // ~0.18 ms at 8 MB.
        let at_8mb = m.promote(8 << 20).as_secs_f64() * 1e3;
        assert!((0.1..0.3).contains(&at_8mb), "8 MB promote: {at_8mb} ms");
        // ~13.5 ms at 1 GB.
        let at_1gb = m.promote(1 << 30).as_secs_f64() * 1e3;
        assert!((12.0..16.0).contains(&at_1gb), "1 GB promote: {at_1gb} ms");
    }

    #[test]
    fn rescale_matches_paper_points() {
        let m = RcLatency::default();
        let sc1 = m.rescale(false).as_micros();
        let sc3 = m.rescale(true).as_micros();
        assert_eq!(sc1, 289);
        assert_eq!(sc3, 373);
    }

    #[test]
    fn remote_reads_cost_more() {
        let m = RcLatency::default();
        assert!(m.read(1024, true) > m.read(1024, false));
        // ~2 ms extra for small objects, as in §7.2.1.
        let extra = m.read(1024, true) - m.read(1024, false);
        assert!(extra >= Duration::from_millis(2));
        assert!(extra < Duration::from_millis(3));
    }

    #[test]
    fn size_scales_read_and_write() {
        let m = RcLatency::default();
        assert!(m.read(10 << 20, false) > m.read(1 << 10, false));
        assert!(m.write(10 << 20, true) > m.write(1 << 10, true));
    }

    #[test]
    fn batched_write_shaves_the_replica_acks() {
        let m = RcLatency::default();
        let full = m.write(64 << 10, false);
        let batched = m.write_batched(64 << 10, false);
        assert_eq!(full - batched, m.replication_ack);
        // Still strictly positive: the master append remains synchronous.
        assert!(batched > Duration::ZERO);
        assert!(m.write_batched(64 << 10, true) < m.write(64 << 10, true));
    }

    #[test]
    fn promote_size_zero_charges_base_plus_one() {
        // Promotion of a zero-byte object still pays the control cost.
        let m = RcLatency::default();
        assert!(m.promote(0) >= m.promote_base);
    }
}
