//! The cluster: coordinator (tablet map, replica placement), client
//! operations, migration-by-promotion, and crash recovery.

use crate::gossip::{GossipEvent, GossipPlane, MemberState};
use crate::node::StorageNode;
use crate::raft::{Command, ReplicaId, ReplicatedCoordinator};
use crate::shard::{ReplicationBatcher, ShardId, ShardRouter};
use crate::{AccessStats, ClusterConfig, Key, NodeId, RcError, ReadLocality, Timed, Value};
use ofc_intern::IdHashMap;
use ofc_simtime::SimTime;
use ofc_telemetry::{Counter, Histogram, Phase, Telemetry};
use std::collections::{BTreeMap, BTreeSet};
use std::time::Duration;

/// Pre-registered recording handles for the store's `rcstore.*` metrics
/// (feeds Table 2 through [`ofc_telemetry::MetricsSnapshot`]).
#[derive(Debug)]
struct ClusterMetrics {
    local_hits: Counter,
    remote_hits: Counter,
    misses: Counter,
    writes: Counter,
    evictions: Counter,
    promotions: Counter,
    scale_ups: Counter,
    scale_downs: Counter,
    objects_lost: Counter,
    transient_errors: Counter,
    batch_flushes: Counter,
    batched_appends: Counter,
    migrate_nanos: Histogram,
    recovery_nanos: Histogram,
}

impl ClusterMetrics {
    fn new(t: &Telemetry) -> Self {
        ClusterMetrics {
            local_hits: t.counter("rcstore.local_hits"),
            remote_hits: t.counter("rcstore.remote_hits"),
            misses: t.counter("rcstore.misses"),
            writes: t.counter("rcstore.writes"),
            evictions: t.counter("rcstore.evictions"),
            promotions: t.counter("rcstore.promotions"),
            scale_ups: t.counter("rcstore.scale_ups"),
            scale_downs: t.counter("rcstore.scale_downs"),
            objects_lost: t.counter("rcstore.objects_lost"),
            transient_errors: t.counter("rcstore.transient_errors"),
            batch_flushes: t.counter("rcstore.batch_flushes"),
            batched_appends: t.counter("rcstore.batched_appends"),
            migrate_nanos: t.histogram("rcstore.migrate_nanos"),
            recovery_nanos: t.histogram("rcstore.recovery_nanos"),
        }
    }
}

/// The distributed cache store. See the crate docs for an example.
#[derive(Debug)]
pub struct Cluster {
    cfg: ClusterConfig,
    nodes: Vec<StorageNode>,
    /// Key → master node.
    tablet: IdHashMap<Key, NodeId>,
    /// Key → backup nodes (in ring order).
    replicas: IdHashMap<Key, Vec<NodeId>>,
    /// Coordinator-side version counters: bumped by every committed write,
    /// delete, or eviction of a key (transaction validation, [`crate::txn`]).
    versions: IdHashMap<Key, u64>,
    telemetry: Telemetry,
    metrics: ClusterMetrics,
    /// Injected fault state (see [`Cluster::inject_transient_errors`] and
    /// friends): remaining client operations that fail with
    /// [`RcError::Transient`].
    transient_budget: u32,
    /// Per-node latency inflation factor (1.0 = nominal).
    slowdown: Vec<f64>,
    /// Deterministic mid-operation crash hook: after `n` more successful
    /// writes, `node` crashes inline (exercises partial-commit recovery).
    crash_after: Option<(u64, NodeId)>,
    /// Stable key→shard mapping (inert with one shard).
    router: ShardRouter,
    /// Coordinator-owned pending replica batches per (shard, backup) pair
    /// (inert with `batch_max_entries == 1`). Buffers survive node crashes;
    /// structural operations flush before mutating placement.
    batcher: ReplicationBatcher,
    /// The replicated control plane (inert single authority by default).
    /// Coordinator replica `r` is co-located with storage node `r`, so
    /// partitions split the group the same way they split the data plane;
    /// coordinator and storage processes fail independently
    /// (`crash_coordinator` vs `crash_node`).
    coord: ReplicatedCoordinator,
    /// Observed membership (inert unless `cfg.gossip.enabled`): replaces
    /// the omniscient crash/restart recovery trigger with SWIM-style
    /// suspect/confirm rounds.
    gossip: GossipPlane,
    /// Active network partition: node → reachability group (`None` = fully
    /// connected). Two nodes interact only within one group.
    partition: Option<Vec<usize>>,
    /// Nodes whose failure recovery is deferred until the control plane
    /// regains a quorum (drained by [`Cluster::coordinator_pump`]).
    pending_recovery: BTreeSet<NodeId>,
    /// Master keys re-owned away from an unreachable-but-alive node
    /// (fencing); their stale physical copies are expunged once the node
    /// is reachable again.
    fenced: BTreeMap<NodeId, Vec<Key>>,
    /// Committed shard re-anchorings (confirmed-dead anchors), overriding
    /// the default `shard % nodes` placement.
    anchor_overrides: BTreeMap<ShardId, NodeId>,
    /// Latest virtual instant any timed operation observed — the clock
    /// used by control-plane gates on untimed operations (evict/delete).
    clock: SimTime,
}

impl Cluster {
    /// Builds a cluster of `cfg.nodes` empty storage nodes.
    ///
    /// # Panics
    ///
    /// Panics if the replication factor leaves no distinct backup nodes or
    /// the node count is zero.
    pub fn new(cfg: ClusterConfig) -> Self {
        assert!(cfg.nodes > 0, "cluster needs at least one node");
        assert!(
            cfg.replication_factor < cfg.nodes,
            "replication factor {} needs more than {} nodes",
            cfg.replication_factor,
            cfg.nodes
        );
        assert!(
            cfg.max_object_bytes <= cfg.segment_bytes,
            "objects must fit in a log segment"
        );
        assert!(
            cfg.raft.replicas <= 1 || cfg.raft.replicas <= cfg.nodes,
            "coordinator replicas ({}) are co-located with storage nodes ({})",
            cfg.raft.replicas,
            cfg.nodes
        );
        let nodes = (0..cfg.nodes)
            .map(|id| StorageNode::new(id, cfg.segment_bytes, cfg.node_pool_bytes))
            .collect();
        let telemetry = Telemetry::standalone();
        let metrics = ClusterMetrics::new(&telemetry);
        let slowdown = vec![1.0; cfg.nodes];
        let router = ShardRouter::new(cfg.shard.shards.max(1), cfg.shard.router_seed);
        let coord = ReplicatedCoordinator::new(cfg.raft.clone(), &telemetry);
        let gossip = GossipPlane::new(cfg.gossip.clone(), cfg.nodes, &telemetry);
        Cluster {
            cfg,
            nodes,
            tablet: IdHashMap::default(),
            replicas: IdHashMap::default(),
            versions: IdHashMap::default(),
            telemetry,
            metrics,
            transient_budget: 0,
            slowdown,
            crash_after: None,
            router,
            batcher: ReplicationBatcher::new(),
            coord,
            gossip,
            partition: None,
            pending_recovery: BTreeSet::new(),
            fenced: BTreeMap::new(),
            anchor_overrides: BTreeMap::new(),
            clock: SimTime::ZERO,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &ClusterConfig {
        &self.cfg
    }

    /// Rebinds the store onto a shared observability plane, re-registering
    /// every `rcstore.*` metric there. Call before the first operation so
    /// no samples land on the discarded standalone plane.
    pub fn bind_telemetry(&mut self, telemetry: &Telemetry) {
        self.telemetry = telemetry.clone();
        self.metrics = ClusterMetrics::new(&self.telemetry);
        self.coord.bind_telemetry(&self.telemetry);
        self.gossip.bind_telemetry(&self.telemetry);
    }

    /// The observability plane this store records into.
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Number of nodes (up or down).
    pub fn n_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Borrow of a node (panics on bad id — internal invariant).
    pub fn node(&self, id: NodeId) -> &StorageNode {
        &self.nodes[id]
    }

    /// Master node of `key`, if cached.
    pub fn master_of(&self, key: &Key) -> Option<NodeId> {
        self.tablet.get(key).copied()
    }

    /// Backup nodes of `key`.
    pub fn backups_of(&self, key: &Key) -> &[NodeId] {
        self.replicas.get(key).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Whether `key` has a cached master copy.
    pub fn contains(&self, key: &Key) -> bool {
        self.tablet.contains_key(key)
    }

    /// Number of cached objects.
    pub fn len(&self) -> usize {
        self.tablet.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.tablet.is_empty()
    }

    /// Total bytes of master copies across the cluster.
    pub fn used_bytes(&self) -> u64 {
        self.nodes.iter().map(StorageNode::used_bytes).sum()
    }

    /// Total pool bytes across live nodes.
    pub fn pool_bytes(&self) -> u64 {
        self.nodes
            .iter()
            .filter(|n| n.is_up())
            .map(StorageNode::pool_bytes)
            .sum()
    }

    /// Pool bytes not occupied by master copies (the slack an over-quota
    /// tenant may opportunistically win).
    pub fn free_bytes(&self) -> u64 {
        self.pool_bytes().saturating_sub(self.used_bytes())
    }

    /// Live master bytes charged to `owner` across the cluster
    /// (O(nodes · log tenants) — node count is a small constant, so this
    /// is the per-operation quota probe).
    pub fn owner_used(&self, owner: &Key) -> u64 {
        self.nodes.iter().map(|n| n.owner_used(owner)).sum()
    }

    /// Per-tenant live-byte accounting aggregated over every node,
    /// ascending by owner. O(tenants) — for the periodic fairness gauge
    /// and tests, never the per-operation hot path.
    pub fn owner_usage(&self) -> BTreeMap<Key, u64> {
        let mut out = BTreeMap::new();
        for node in &self.nodes {
            for (owner, used) in node.owner_usages() {
                *out.entry(*owner).or_insert(0) += used;
            }
        }
        out
    }

    /// Up to `max` of `owner`'s masters across the cluster in LRU order
    /// (`(key, dirty, charged bytes)`), merged from the per-node per-tenant
    /// sub-indexes — the quota-reclamation victim feed. Visits at most
    /// `nodes · max` index entries, never another tenant's objects.
    pub fn owner_victims(&self, owner: &Key, max: usize) -> Vec<(Key, bool, u64)> {
        let mut merged: Vec<(Key, bool, u64, SimTime)> = Vec::new();
        for node in &self.nodes {
            merged.extend(node.owner_victims(owner, max));
        }
        // LRU across nodes; tie-break on key for placement-independence.
        merged.sort_by_key(|&(key, _, _, t_access)| (t_access, key));
        merged.truncate(max);
        merged
            .into_iter()
            .map(|(key, dirty, size, _)| (key, dirty, size))
            .collect()
    }

    /// Access statistics of a cached object.
    pub fn stats_of(&self, key: &Key) -> Option<AccessStats> {
        let master = self.master_of(key)?;
        self.nodes[master].peek_master(key).map(|o| o.stats)
    }

    /// Whether the cached object is dirty (unpersisted).
    pub fn is_dirty(&self, key: &Key) -> Option<bool> {
        let master = self.master_of(key)?;
        self.nodes[master].peek_master(key).map(|o| o.dirty)
    }

    /// Pushes the agent's `n_access` eviction bound down to every node's
    /// cold index (rebuilding them). Call once at agent construction,
    /// before the periodic sweeps start.
    pub fn set_cold_access_threshold(&mut self, min_access: u64) {
        for node in &mut self.nodes {
            node.set_cold_access_threshold(min_access);
        }
    }

    /// Cluster-wide periodic-eviction candidates (§6.3), aggregated over
    /// every node's eviction index: key-sorted `(key, dirty)` pairs plus
    /// the total number of index entries visited. Each key is mastered on
    /// exactly one node, so per-node victim lists concatenate without
    /// duplicates; the final sort keeps the order independent of placement.
    pub fn evict_candidates(
        &self,
        now: SimTime,
        min_age: Duration,
        min_idle: Duration,
    ) -> (Vec<(Key, bool)>, u64) {
        let mut victims = Vec::new();
        let mut visited = 0u64;
        for node in &self.nodes {
            let (mut v, seen) = node.evict_candidates(now, min_age, min_idle);
            victims.append(&mut v);
            visited += seen;
        }
        victims.sort();
        (victims, visited)
    }

    /// Writes an object into the cache.
    ///
    /// The master is placed on `home` (the invoker node running the writing
    /// function, §6.5 locality) when it has room, otherwise on the live node
    /// with the most available pool. Backups go to the next
    /// `replication_factor` live nodes in ring order.
    pub fn write(
        &mut self,
        home: NodeId,
        key: &Key,
        value: Value,
        now: SimTime,
    ) -> Timed<Result<NodeId, RcError>> {
        self.write_with_dirty(home, key, value, now, true)
    }

    /// [`Cluster::write`] with an explicit dirty flag (tests and pre-warmed
    /// caches insert clean objects).
    pub fn write_with_dirty(
        &mut self,
        home: NodeId,
        key: &Key,
        value: Value,
        now: SimTime,
        dirty: bool,
    ) -> Timed<Result<NodeId, RcError>> {
        if self.consume_transient() {
            return Timed::new(Err(RcError::Transient), Duration::ZERO);
        }
        let size = value.size();
        if size > self.cfg.max_object_bytes {
            return Timed::new(
                Err(RcError::ObjectTooLarge {
                    size,
                    max: self.cfg.max_object_bytes,
                }),
                Duration::ZERO,
            );
        }
        // Control-plane gate: the write's tablet assignment must commit on
        // a coordinator quorum reachable from the writer (free and
        // infallible with a single-replica coordinator).
        if let Err(e) = self.coord_gate(home, now) {
            return Timed::new(Err(e), Duration::ZERO);
        }
        // An overwrite first retires the previous placement.
        if self.tablet.contains_key(key) {
            self.remove_entry(key);
        }
        let shard = self.router.shard_of(key);
        let Some(master) = self.place_master_in_shard(shard, home, size) else {
            // Placement is reachability-filtered, so a partitioned side
            // can exhaust its candidates while remote pools sit idle.
            return Timed::new(
                Err(RcError::OutOfMemory {
                    requested: size,
                    available: self.max_node_available(),
                }),
                Duration::ZERO,
            );
        };
        if let Err(e) = self.nodes[master].insert_master(*key, value.clone(), now, dirty) {
            return Timed::new(Err(e), Duration::ZERO);
        }
        let backups = self.pick_backups(master);
        let batching = self.cfg.shard.batching();
        if batching {
            // Replica writes coalesce per (shard, backup) pair; a buffer
            // reaching the batch threshold flushes inline.
            for &b in &backups {
                self.metrics.batched_appends.inc();
                // ofc-lint: allow(hotloop) reason=replication fan-out hands each backup an owned value; Bytes-backed refcount bump
                if self.batcher.enqueue(shard, b, *key, value.clone())
                    >= self.cfg.shard.batch_max_entries
                {
                    self.flush_pair(shard, b);
                }
            }
        } else {
            for &b in &backups {
                // ofc-lint: allow(hotloop) reason=replication fan-out hands each backup an owned value; Bytes-backed refcount bump
                self.nodes[b].store_backup(*key, value.clone());
            }
        }
        // Commit the assignment through the replicated log (free no-op in
        // single-replica mode); the gate above guarantees the quorum, so
        // this cannot fail between the gate and here.
        let commit = self.commit_assignment(key, master, &backups);
        self.tablet.insert(*key, master);
        self.replicas.insert(*key, backups);
        *self.versions.entry(*key).or_insert(0) += 1;
        self.metrics.writes.inc();
        let base = if batching {
            self.cfg.latency.write_batched(size, master != home)
        } else {
            self.cfg.latency.write(size, master != home)
        };
        let latency = self.inflate(master, base) + commit;
        // Deterministic crash hook: the victim goes down after this write
        // completes, i.e. between the writes of a multi-object commit.
        if let Some((remaining, victim)) = self.crash_after {
            if remaining <= 1 {
                self.crash_after = None;
                self.crash_node(victim, now);
            } else {
                self.crash_after = Some((remaining - 1, victim));
            }
        }
        Timed::new(Ok(master), latency)
    }

    /// Reads an object from the viewpoint of node `from`.
    pub fn read(
        &mut self,
        from: NodeId,
        key: &Key,
        now: SimTime,
    ) -> Timed<Result<(Value, ReadLocality), RcError>> {
        if self.consume_transient() {
            return Timed::new(Err(RcError::Transient), Duration::ZERO);
        }
        let Some(&master) = self.tablet.get(key) else {
            self.metrics.misses.inc();
            return Timed::new(Err(RcError::NotFound(*key)), Duration::ZERO);
        };
        // Reads use the client-cached tablet map (no quorum round trip, as
        // in RAMCloud) but still need a network path to the master.
        if !self.reachable(from, master) {
            self.metrics.misses.inc();
            return Timed::new(Err(RcError::NodeUnavailable(master)), Duration::ZERO);
        }
        let Some(obj) = self.nodes[master].read_master(key, now) else {
            self.metrics.misses.inc();
            return Timed::new(Err(RcError::NodeUnavailable(master)), Duration::ZERO);
        };
        let value = obj.value.clone();
        let locality = if master == from {
            self.metrics.local_hits.inc();
            ReadLocality::LocalHit
        } else {
            self.metrics.remote_hits.inc();
            ReadLocality::RemoteHit
        };
        let latency = self.inflate(
            master,
            self.cfg
                .latency
                .read(value.size(), locality == ReadLocality::RemoteHit),
        );
        Timed::new(Ok((value, locality)), latency)
    }

    /// Marks an object clean (persisted to the RSDS).
    pub fn mark_clean(&mut self, key: &Key) -> Result<(), RcError> {
        let master = self.master_of(key).ok_or(RcError::NotFound(*key))?;
        self.nodes[master].set_dirty(key, false)
    }

    /// Evicts an object entirely (master and backups).
    ///
    /// Dirty objects are refused — the caller must write them back first
    /// (§6.4's reclamation order guarantees this).
    pub fn evict(&mut self, key: &Key) -> Timed<Result<u64, RcError>> {
        let Some(&master) = self.tablet.get(key) else {
            return Timed::new(Err(RcError::NotFound(*key)), Duration::ZERO);
        };
        if self.nodes[master].peek_master(key).is_some_and(|o| o.dirty) {
            return Timed::new(Err(RcError::Dirty(*key)), Duration::ZERO);
        }
        if let Err(e) = self.coord_gate(self.coord_origin(), self.clock) {
            return Timed::new(Err(e), Duration::ZERO);
        }
        self.commit_retirement(key);
        let size = self.remove_entry(key);
        self.metrics.evictions.inc();
        Timed::new(Ok(size), self.cfg.latency.delete_base)
    }

    /// Deletes an object unconditionally (pipeline intermediates are dropped
    /// without persistence once the pipeline ends, §6.3).
    pub fn delete(&mut self, key: &Key) -> Timed<Result<u64, RcError>> {
        if !self.tablet.contains_key(key) {
            return Timed::new(Err(RcError::NotFound(*key)), Duration::ZERO);
        }
        if let Err(e) = self.coord_gate(self.coord_origin(), self.clock) {
            return Timed::new(Err(e), Duration::ZERO);
        }
        self.commit_retirement(key);
        let size = self.remove_entry(key);
        Timed::new(Ok(size), self.cfg.latency.delete_base)
    }

    /// Moves the mastership of `key` off its current node by promoting a
    /// backup replica (§6.4): no payload crosses the network; the old master
    /// keeps an on-disk copy and becomes a backup, preserving the
    /// replication factor.
    pub fn migrate_by_promotion(
        &mut self,
        key: &Key,
        now: SimTime,
    ) -> Timed<Result<NodeId, RcError>> {
        // Promotion consumes a physical backup copy: pending batches must
        // land first.
        self.flush_replication();
        if let Err(e) = self.coord_gate(self.coord_origin(), now) {
            return Timed::new(Err(e), Duration::ZERO);
        }
        let Some(&old_master) = self.tablet.get(key) else {
            return Timed::new(Err(RcError::NotFound(*key)), Duration::ZERO);
        };
        let size = self.nodes[old_master]
            .peek_master(key)
            .map(|o| o.value.size())
            .unwrap_or(0);
        let dirty = self.nodes[old_master]
            .peek_master(key)
            .map(|o| o.dirty)
            .unwrap_or(false);
        // Elect the backup with the most available memory.
        let backups = self.backups_of(key).to_vec();
        let new_master = backups
            .iter()
            .copied()
            .filter(|&b| self.nodes[b].is_up() && self.nodes[b].available_bytes() >= size)
            .max_by_key(|&b| self.nodes[b].available_bytes());
        let Some(new_master) = new_master else {
            return Timed::new(Err(RcError::NoEligibleBackup(*key)), Duration::ZERO);
        };
        if let Err(e) = self.nodes[new_master].promote_backup(key, now, dirty) {
            return Timed::new(Err(e), Duration::ZERO);
        }
        // Old master demotes to backup: removes from memory, keeps on disk.
        if self.nodes[old_master].demote_to_backup(key).is_err() {
            // Master vanished under us; treat as recovery-grade promotion.
            self.nodes[old_master].remove_master(key);
        }
        self.tablet.insert(*key, new_master);
        let new_backups: Vec<NodeId> = backups
            .into_iter()
            .map(|b| if b == new_master { old_master } else { b })
            .collect();
        let commit = self.commit_assignment(key, new_master, &new_backups);
        self.replicas.insert(*key, new_backups);
        self.metrics.promotions.inc();
        let latency = self.cfg.latency.promote(size) + commit;
        self.metrics.migrate_nanos.record_duration(latency);
        self.telemetry
            .span_at(new_master as u64, Phase::Migrate, now, latency);
        Timed::new(Ok(new_master), latency)
    }

    /// Resizes a node's memory pool (vertical scaling).
    ///
    /// Shrinks that would cut into live data are refused — the cache agent
    /// must evict or migrate first; this keeps the mechanism/policy split
    /// clean.
    pub fn resize_pool(&mut self, node: NodeId, bytes: u64) -> Timed<Result<(), RcError>> {
        if node >= self.nodes.len() || !self.nodes[node].is_up() {
            return Timed::new(Err(RcError::NodeUnavailable(node)), Duration::ZERO);
        }
        let growing = bytes >= self.nodes[node].pool_bytes();
        if !growing && self.nodes[node].used_bytes() > bytes {
            return Timed::new(
                Err(RcError::OutOfMemory {
                    requested: bytes,
                    available: self.nodes[node].used_bytes(),
                }),
                Duration::ZERO,
            );
        }
        let over = self.nodes[node].set_pool_bytes(bytes);
        debug_assert!(!over, "live data fits, so the cleaner must succeed");
        if growing {
            self.metrics.scale_ups.inc();
        } else {
            self.metrics.scale_downs.inc();
        }
        Timed::new(Ok(()), self.cfg.latency.rescale(false))
    }

    /// Crashes a node and recovers its data: every object it mastered is
    /// promoted on a surviving backup; replicas it held are re-created
    /// elsewhere to restore the replication factor.
    ///
    /// Returns the number of objects lost (no surviving replica), with the
    /// recovery latency. Losses are surfaced as the `rcstore.objects_lost`
    /// counter and a [`Phase::Recovery`] span on the trace plane — silent
    /// data loss is an observability bug.
    pub fn crash_node(&mut self, node: NodeId, now: SimTime) -> Timed<usize> {
        if node >= self.nodes.len() || !self.nodes[node].is_up() {
            return Timed::new(0, Duration::ZERO);
        }
        self.clock = self.clock.max(now);
        // An acked write's durability rests on its physical backup copies:
        // pending replica batches land before the node state mutates.
        self.flush_replication();
        self.nodes[node].set_up(false);
        if self.gossip.enabled() {
            // Failure detection is the membership plane's job now: recovery
            // starts once a quorum-side probe confirms the death (or the
            // node restarts first), not at the instant of the crash.
            return Timed::new(0, Duration::ZERO);
        }
        if self.coord.is_replicated() {
            self.coord.tick(now, self.partition.as_deref());
            if !self
                .coord
                .can_serve(self.coord_origin(), self.partition.as_deref())
            {
                // Headless control plane: park the recovery until a leader
                // with a quorum is back (drained by `coordinator_pump`).
                self.pending_recovery.insert(node);
                return Timed::new(0, Duration::ZERO);
            }
        }
        self.recover_crashed(node, now)
    }

    /// The coordinator-driven recovery of a failed (or fenced) node:
    /// re-masters its tablets onto reachable surviving backups and
    /// restores the replication factor of every object that replicated
    /// through it.
    fn recover_crashed(&mut self, node: NodeId, now: SimTime) -> Timed<usize> {
        let (lost, latency) = self.recover_tablets_of(node, now);
        self.top_up_weakened_for(node);
        self.metrics.objects_lost.add(lost as u64);
        self.metrics.recovery_nanos.record_duration(latency);
        self.telemetry
            .span_at(node as u64, Phase::Recovery, now, latency);
        Timed::new(lost, latency)
    }

    /// Re-masters every tablet pinned to `node` that the cluster can no
    /// longer serve from it: the node is down, rejoined empty, or sits on
    /// the far side of a partition — in which case its still-live master
    /// copies are *fenced* (left in place, expunged once reachable again)
    /// rather than declared lost. Returns `(objects lost, latency)`.
    fn recover_tablets_of(&mut self, node: NodeId, now: SimTime) -> (usize, Duration) {
        let origin = self.coord_origin();
        let node_alive = self.nodes[node].is_up();
        let node_reachable = self.reachable(origin, node);
        let mut latency = Duration::ZERO;
        let mut lost = 0usize;
        let mut orphaned: Vec<Key> = self
            .tablet
            .iter()
            .filter(|&(k, &m)| {
                m == node && (!node_alive || !node_reachable || !self.nodes[node].has_master(k))
            })
            .map(|(k, _)| *k)
            .collect();
        // Recovery order must not depend on hash-map iteration.
        orphaned.sort();
        for key in orphaned {
            let survivors: Vec<NodeId> = self
                .backups_of(&key)
                .iter()
                .copied()
                .filter(|&b| {
                    self.nodes[b].is_up()
                        && self.nodes[b].has_backup(&key)
                        && self.reachable(origin, b)
                })
                // ofc-lint: allow(hotloop) reason=recovery snapshots the surviving backup set before mutating nodes
                .collect();
            let Some(&new_master) = survivors.first() else {
                if node_alive && !node_reachable {
                    // The only copy lives across the partition: leave the
                    // tablet pointed there (reads fail transiently) rather
                    // than declare an acked write lost.
                    continue;
                }
                // A live backup across the partition still holds a copy:
                // park the node so the pump re-walks it once the
                // partition heals, instead of declaring the write lost.
                let copy_across_partition = self.backups_of(&key).iter().any(|&b| {
                    self.nodes[b].is_up()
                        && self.nodes[b].has_backup(&key)
                        && !self.reachable(origin, b)
                });
                if copy_across_partition {
                    self.pending_recovery.insert(node);
                    continue;
                }
                self.commit_retirement(&key);
                self.remove_entry(&key);
                lost += 1;
                continue;
            };
            let size = self.nodes[new_master]
                .peek_master(&key)
                .map(|o| o.value.size())
                .unwrap_or_else(|| {
                    // Size comes from the backup copy being promoted.
                    0
                });
            if self.nodes[new_master]
                .promote_backup(&key, now, false)
                .is_err()
            {
                self.commit_retirement(&key);
                self.remove_entry(&key);
                lost += 1;
                continue;
            }
            latency += self.cfg.latency.promote(size.max(1));
            if node_alive && !node_reachable && self.nodes[node].has_master(&key) {
                // Fence the unreachable-but-alive old master: its stale
                // copy stays physical until the partition heals.
                self.fenced.entry(node).or_default().push(key);
            }
            self.tablet.insert(key, new_master);
            // ofc-lint: allow(hotloop) reason=recovery builds an owned backup list from the survivor tail
            let backups: Vec<NodeId> = survivors[1..].to_vec();
            // Restore the replication factor from the new master's copy.
            let value = self.nodes[new_master]
                .peek_master(&key)
                // ofc-lint: allow(hotloop) reason=promoted master's value feeds re-replication as an owned copy
                .map(|o| o.value.clone());
            let backups = match value {
                Some(value) => self.top_up_replication(&key, new_master, &value, backups),
                None => backups,
            };
            self.commit_assignment(&key, new_master, &backups);
            self.replicas.insert(key, backups);
        }
        (lost, latency)
    }

    /// Restores the replication factor of objects whose backup set named
    /// `node` (the crash path's weakened walk).
    fn top_up_weakened_for(&mut self, node: NodeId) {
        let mut weakened: Vec<Key> = self
            .replicas
            .iter()
            .filter(|(_, bs)| bs.contains(&node))
            .map(|(k, _)| *k)
            .collect();
        weakened.sort();
        for key in weakened {
            let Some(&master) = self.tablet.get(&key) else {
                continue;
            };
            let value = match self.nodes[master].peek_master(&key) {
                // ofc-lint: allow(hotloop) reason=master's value feeds re-replication as an owned copy
                Some(o) => o.value.clone(),
                None => continue,
            };
            let backups: Vec<NodeId> = self.replicas[&key]
                .iter()
                .copied()
                .filter(|&b| b != node)
                // ofc-lint: allow(hotloop) reason=recovery snapshots the remaining backup set before mutating nodes
                .collect();
            let backups = self.top_up_replication(&key, master, &value, backups);
            self.replicas.insert(key, backups);
        }
    }

    /// Restarts a crashed node at `now`. It rejoins empty and announces
    /// itself to the control plane, which reconciles any state still
    /// naming it: stale tablet pointers left by a deferred recovery are
    /// rescued from backups, fenced copies it no longer owns are expunged,
    /// and every object below the replication factor is topped back up.
    /// With a headless replicated coordinator the reconciliation parks
    /// until a quorum returns (drained by [`Cluster::coordinator_pump`]).
    pub fn restart_node(&mut self, node: NodeId, now: SimTime) {
        if node >= self.nodes.len() {
            return;
        }
        self.clock = self.clock.max(now);
        // Land pending batches so the weakened-replica scan below sees the
        // true physical replication of every key.
        self.flush_replication();
        self.nodes[node].set_up(true);
        if self.coord.is_replicated() {
            self.coord.tick(now, self.partition.as_deref());
            if !self
                .coord
                .can_serve(self.coord_origin(), self.partition.as_deref())
            {
                self.pending_recovery.insert(node);
                return;
            }
        }
        self.pending_recovery.remove(&node);
        self.reconcile_rejoin(node, now);
    }

    /// A node's rejoin reconciliation: rescue tablets still pinned to it
    /// (it rejoined empty), drop fenced copies it no longer owns, and top
    /// up every under-replicated object now that it hosts backups again.
    fn reconcile_rejoin(&mut self, node: NodeId, now: SimTime) {
        self.expunge_fenced(node);
        let (lost, latency) = self.recover_tablets_of(node, now);
        if lost > 0 || latency > Duration::ZERO {
            self.metrics.objects_lost.add(lost as u64);
            self.metrics.recovery_nanos.record_duration(latency);
            self.telemetry
                .span_at(node as u64, Phase::Recovery, now, latency);
        }
        self.top_up_all_weakened();
    }

    /// Tops up every object whose physical backup count fell below the
    /// replication factor (restart/heal reconciliation).
    fn top_up_all_weakened(&mut self) {
        let mut weakened: Vec<Key> = self
            .replicas
            .iter()
            .filter(|(key, backups)| {
                let live = backups
                    .iter()
                    .filter(|&&b| self.nodes[b].is_up() && self.nodes[b].has_backup(key))
                    .count();
                live < self.cfg.replication_factor
            })
            .map(|(k, _)| *k)
            .collect();
        weakened.sort();
        for key in weakened {
            let Some(&master) = self.tablet.get(&key) else {
                continue;
            };
            let value = match self.nodes[master].peek_master(&key) {
                // ofc-lint: allow(hotloop) reason=master's value feeds re-replication as an owned copy
                Some(o) => o.value.clone(),
                None => continue,
            };
            let backups: Vec<NodeId> = self.replicas[&key]
                .iter()
                .copied()
                .filter(|&b| self.nodes[b].is_up() && self.nodes[b].has_backup(&key))
                // ofc-lint: allow(hotloop) reason=recovery snapshots the live backup set before mutating nodes
                .collect();
            let backups = self.top_up_replication(&key, master, &value, backups);
            self.replicas.insert(key, backups);
        }
    }

    /// Adds a storage node to the cluster (horizontal scale-out, §6.4).
    ///
    /// The new node joins empty with the given memory pool and immediately
    /// becomes a placement candidate for masters and backups; returns its
    /// id. Existing placements are untouched — load drains towards the new
    /// node through normal writes, reclamation migrations, and recovery.
    pub fn add_node(&mut self, pool_bytes: u64) -> NodeId {
        let id = self.nodes.len();
        self.nodes
            .push(StorageNode::new(id, self.cfg.segment_bytes, pool_bytes));
        self.slowdown.push(1.0);
        self.cfg.nodes = self.nodes.len();
        self.gossip.grow_to(self.nodes.len());
        if let Some(groups) = &mut self.partition {
            // A node added mid-partition joins as its own island until the
            // network heals.
            let next = groups.iter().copied().max().map_or(0, |g| g + 1);
            groups.push(next);
        }
        id
    }

    /// Drains and removes a node from service (horizontal scale-in, §6.4):
    /// every master it holds migrates away by promotion where a backup
    /// exists (falling back to a copy through the coordinator otherwise),
    /// backups it held are re-created elsewhere, and the node goes down.
    ///
    /// Returns the number of objects that could not be preserved (only
    /// possible when the remaining nodes lack memory).
    pub fn drain_node(&mut self, node: NodeId, now: SimTime) -> Timed<usize> {
        if node >= self.nodes.len() || !self.nodes[node].is_up() {
            return Timed::new(0, Duration::ZERO);
        }
        // A planned drain is one long control-plane mutation; refuse to
        // start it headless rather than bypass consensus per key.
        if self.coord_gate(self.coord_origin(), now).is_err() {
            return Timed::new(0, Duration::ZERO);
        }
        self.flush_replication();
        let mut latency = Duration::ZERO;
        let mut lost = 0usize;
        let masters: Vec<Key> = self
            .tablet
            .iter()
            .filter(|&(_, &m)| m == node)
            .map(|(k, _)| *k)
            .collect();
        for key in masters {
            let t = self.migrate_by_promotion(&key, now);
            match t.result {
                Ok(_) => latency += t.latency,
                Err(_) => {
                    // No eligible backup: fall back to a coordinator-driven
                    // copy onto the roomiest other live node.
                    let (value, dirty) = match self.nodes[node].peek_master(&key) {
                        // ofc-lint: allow(hotloop) reason=drained master's value feeds the fallback copy as an owned payload
                        Some(o) => (o.value.clone(), o.dirty),
                        None => continue,
                    };
                    let target = self
                        .nodes
                        .iter()
                        .filter(|n| {
                            n.id() != node
                                && n.is_up()
                                && n.available_bytes() >= value.size().max(1)
                        })
                        .max_by_key(|n| n.available_bytes())
                        .map(StorageNode::id);
                    match target {
                        Some(target) => {
                            let size = value.size();
                            if self.nodes[target]
                                .insert_master(key, value, now, dirty)
                                .is_ok()
                            {
                                self.nodes[node].remove_master(&key);
                                self.tablet.insert(key, target);
                                // Full copy over the network, unlike promotion.
                                latency += self.cfg.latency.write(size, true);
                            } else {
                                lost += 1;
                                self.remove_entry(&key);
                            }
                        }
                        None => {
                            lost += 1;
                            self.remove_entry(&key);
                        }
                    }
                }
            }
        }
        // Re-home the backups it held, then take it out of service; the
        // crash-recovery walk restores replication. This is a planned
        // removal the coordinator itself drives, so it runs inline even
        // when failure *detection* is gossip's job.
        self.flush_replication();
        self.nodes[node].set_up(false);
        let t = self.recover_crashed(node, now);
        latency += t.latency;
        self.metrics.objects_lost.add(lost as u64);
        Timed::new(lost + t.result, latency)
    }

    /// Current replication factor of `key` (backup copies actually present).
    pub fn live_replicas(&self, key: &Key) -> usize {
        self.backups_of(key)
            .iter()
            .filter(|&&b| self.nodes[b].is_up() && self.nodes[b].has_backup(key))
            .count()
    }

    /// Current version of `key` (0 when never written).
    pub fn version_of(&self, key: &Key) -> u64 {
        self.versions.get(key).copied().unwrap_or(0)
    }

    /// Clone of the cached value of `key`, without touching access stats.
    pub fn peek_value(&self, key: &Key) -> Option<Value> {
        let master = self.master_of(key)?;
        self.nodes[master].peek_master(key).map(|o| o.value.clone())
    }

    /// Number of live (up) nodes.
    pub fn live_nodes(&self) -> usize {
        self.nodes.iter().filter(|n| n.is_up()).count()
    }

    /// Fault injection: the next `n` client operations (reads and writes)
    /// fail with [`RcError::Transient`], counted as
    /// `rcstore.transient_errors`.
    pub fn inject_transient_errors(&mut self, n: u32) {
        self.transient_budget = self.transient_budget.saturating_add(n);
    }

    /// Fault injection: inflates `node`'s operation latencies by `factor`
    /// (clamped to ≥ 1.0) until cleared — models a slow node.
    pub fn set_node_slowdown(&mut self, node: NodeId, factor: f64) {
        if let Some(s) = self.slowdown.get_mut(node) {
            *s = factor.max(1.0);
        }
    }

    /// Restores `node` to nominal latency.
    pub fn clear_node_slowdown(&mut self, node: NodeId) {
        self.set_node_slowdown(node, 1.0);
    }

    /// Fault injection: after `n` more successful writes anywhere in the
    /// cluster, `node` crashes inline — a deterministic way to model a
    /// crash landing between the writes of one transaction commit.
    pub fn crash_after_writes(&mut self, n: u64, node: NodeId) {
        self.crash_after = if n == 0 { None } else { Some((n, node)) };
    }

    /// Clears all injected fault state (error budgets, slowdowns, pending
    /// crash hooks). Crashed nodes stay down — restart them explicitly.
    pub fn clear_faults(&mut self) {
        self.transient_budget = 0;
        for s in &mut self.slowdown {
            *s = 1.0;
        }
        self.crash_after = None;
    }

    // --- Replicated control plane -------------------------------------

    /// Splits the network into reachability `groups` (each a list of node
    /// ids; nodes listed nowhere become singleton islands). Both planes
    /// split together: coordinator replica `r` is co-located with storage
    /// node `r`, so an isolated minority loses the control plane too.
    pub fn partition_network(&mut self, groups: &[Vec<NodeId>], now: SimTime) {
        self.clock = self.clock.max(now);
        let mut assign = vec![usize::MAX; self.nodes.len()];
        for (g, members) in groups.iter().enumerate() {
            for &m in members {
                if let Some(slot) = assign.get_mut(m) {
                    *slot = g;
                }
            }
        }
        let mut next = groups.len();
        for slot in &mut assign {
            if *slot == usize::MAX {
                *slot = next;
                next += 1;
            }
        }
        self.partition = Some(assign);
        self.coordinator_pump(now);
    }

    /// Heals any active partition: fenced stale copies are expunged, the
    /// control plane re-elects across the full group, deferred recoveries
    /// drain, and partition-era short replication is topped back up.
    pub fn heal_partition(&mut self, now: SimTime) {
        self.clock = self.clock.max(now);
        self.partition = None;
        let fenced: Vec<NodeId> = self.fenced.keys().copied().collect();
        for node in fenced {
            self.expunge_fenced(node);
        }
        self.coordinator_pump(now);
        if self
            .coord
            .can_serve(self.coord_origin(), self.partition.as_deref())
        {
            self.top_up_all_weakened();
        }
    }

    /// Drives the control plane at `now`: elections/catch-up tick, then —
    /// once a reachable leader with a quorum exists — drains every
    /// deferred recovery and tops up replication weakened while headless.
    /// The runtime schedules this at the raft heartbeat interval; fault
    /// and heal paths call it inline.
    pub fn coordinator_pump(&mut self, now: SimTime) {
        self.clock = self.clock.max(now);
        self.coord.tick(now, self.partition.as_deref());
        if !self
            .coord
            .can_serve(self.coord_origin(), self.partition.as_deref())
        {
            return;
        }
        let pending: Vec<NodeId> = self.pending_recovery.iter().copied().collect();
        let mut drained = false;
        for node in pending {
            // A down node's re-walk only becomes productive when the
            // partition state changes (heal pumps right after clearing
            // it); keep it parked rather than churn every heartbeat. Up
            // nodes — rejoins, alive-but-unreachable verdicts — reconcile
            // immediately.
            if !self.nodes[node].is_up() && self.partition.is_some() {
                continue;
            }
            self.pending_recovery.remove(&node);
            self.reconcile_node(node, now);
            drained = true;
        }
        if drained {
            self.top_up_all_weakened();
        }
    }

    /// Runs one gossip probe round at `now` and applies its membership
    /// transitions: quorum-side confirmations trigger recovery (or fencing
    /// of unreachable-but-alive nodes), quorum-side rejoins reconcile, and
    /// minority-side observations park in the deferred queue. Returns the
    /// round's events so upstream layers (circuit breakers) can react.
    pub fn gossip_round(&mut self, now: SimTime) -> Vec<GossipEvent> {
        self.clock = self.clock.max(now);
        let up: Vec<bool> = self.nodes.iter().map(StorageNode::is_up).collect();
        let partition = self.partition.clone();
        let events = self.gossip.round(
            now,
            |n| up.get(n).copied().unwrap_or(false),
            |a, b| match &partition {
                Some(groups) => groups.get(a) == groups.get(b),
                None => true,
            },
        );
        for &event in &events {
            match event {
                GossipEvent::Confirmed { node, observer } => {
                    if self.coord_observed_quorum(observer) {
                        self.handle_confirmed_dead(node, now);
                    } else {
                        // A minority-side confirmation cannot mutate the
                        // tablet map; remember it for the pump, which
                        // re-checks liveness before acting.
                        self.pending_recovery.insert(node);
                    }
                }
                GossipEvent::Rejoined { node, observer } => {
                    if self.coord_observed_quorum(observer) {
                        self.pending_recovery.remove(&node);
                        self.reconcile_rejoin(node, now);
                    } else {
                        self.pending_recovery.insert(node);
                    }
                }
                GossipEvent::Suspected { .. } | GossipEvent::Refuted { .. } => {}
            }
        }
        events
    }

    /// Crashes coordinator replica `r` (the co-located storage node keeps
    /// serving data: the processes fail independently).
    pub fn crash_coordinator(&mut self, r: ReplicaId, now: SimTime) {
        self.clock = self.clock.max(now);
        self.coord.crash_replica(r, now);
    }

    /// Restarts coordinator replica `r`; it catches up by log replay or
    /// snapshot install on the next tick.
    pub fn restart_coordinator(&mut self, r: ReplicaId, now: SimTime) {
        self.clock = self.clock.max(now);
        self.coord.restart_replica(r, now);
        self.coordinator_pump(now);
    }

    /// Isolates the current leader's node from every other node (the
    /// classic Raft partition drill). Returns the isolated replica, or
    /// `None` when there is no leader to isolate.
    pub fn isolate_leader(&mut self, now: SimTime) -> Option<ReplicaId> {
        let leader = self.coord.leader()?;
        let rest: Vec<NodeId> = (0..self.nodes.len()).filter(|&n| n != leader).collect();
        self.partition_network(&[vec![leader], rest], now);
        Some(leader)
    }

    /// The replicated coordinator group (inspection).
    pub fn coordinator(&self) -> &ReplicatedCoordinator {
        &self.coord
    }

    /// Whether gossip membership is active.
    pub fn gossip_enabled(&self) -> bool {
        self.gossip.enabled()
    }

    /// The gossip probe cadence (for the runtime's tick scheduling).
    pub fn gossip_period(&self) -> Duration {
        self.gossip.period()
    }

    /// Observed membership state of `node` (always `Alive` when gossip is
    /// disabled: the control plane is omniscient).
    pub fn member_state(&self, node: NodeId) -> MemberState {
        self.gossip.state(node)
    }

    /// Whether a network partition is active.
    pub fn partitioned(&self) -> bool {
        self.partition.is_some()
    }

    /// Number of node recoveries deferred until the control plane regains
    /// a quorum.
    pub fn deferred_recoveries(&self) -> usize {
        self.pending_recovery.len()
    }

    /// Routes a deferred or gossip-confirmed node event to the right
    /// reconciliation: a node that is up and reachable again rejoins; one
    /// that is down or across the partition is recovered/fenced.
    fn reconcile_node(&mut self, node: NodeId, now: SimTime) {
        if self.nodes[node].is_up() && self.reachable(self.coord_origin(), node) {
            self.reconcile_rejoin(node, now);
        } else {
            self.recover_crashed(node, now);
            self.reassign_anchors_off(node, now);
        }
    }

    /// Acts on a quorum-side death confirmation. Guards against gossip
    /// false positives: a node that is in fact up and reachable is left
    /// alone (a later probe will refute the suspicion).
    fn handle_confirmed_dead(&mut self, node: NodeId, now: SimTime) {
        if self.nodes[node].is_up() && self.reachable(self.coord_origin(), node) {
            return;
        }
        self.recover_crashed(node, now);
        self.reassign_anchors_off(node, now);
    }

    /// Drops the stale master copies fenced on `node` for keys the quorum
    /// side re-owned while it was unreachable.
    fn expunge_fenced(&mut self, node: NodeId) {
        let Some(keys) = self.fenced.remove(&node) else {
            return;
        };
        for key in keys {
            if self.tablet.get(&key) != Some(&node) {
                self.nodes[node].remove_master(&key);
            }
        }
    }

    /// Re-anchors every shard whose anchor is `node` onto the next up,
    /// reachable ring successor, committing each move through the log.
    fn reassign_anchors_off(&mut self, node: NodeId, now: SimTime) {
        if self.router.shards() <= 1 {
            return;
        }
        let origin = self.coord_origin();
        for shard in 0..self.router.shards() {
            if self.shard_master(shard) != node {
                continue;
            }
            let replacement = self
                .ring_from(node)
                .find(|&c| self.nodes[c].is_up() && self.reachable(origin, c));
            if let Some(anchor) = replacement {
                let _ = self.coord.propose(
                    Command::ReassignShard { shard, anchor },
                    origin,
                    now,
                    self.partition.as_deref(),
                );
                self.anchor_overrides.insert(shard, anchor);
            }
        }
    }

    /// Admission gate for control-plane mutations: with a replicated
    /// coordinator the mutation needs a leader holding a quorum reachable
    /// from `origin`; otherwise it fails transiently. Free and infallible
    /// in single-replica mode.
    fn coord_gate(&mut self, origin: NodeId, now: SimTime) -> Result<(), RcError> {
        self.clock = self.clock.max(now);
        if !self.coord.is_replicated() {
            return Ok(());
        }
        self.coord.tick(now, self.partition.as_deref());
        if self.coord.can_serve(origin, self.partition.as_deref()) {
            Ok(())
        } else {
            Err(RcError::Transient)
        }
    }

    /// Commits a tablet assignment through the replicated log, returning
    /// the commit latency to charge (zero in single-replica mode). Callers
    /// gate first, so a quorum loss between gate and commit is the only
    /// (benign, zero-latency) failure path.
    fn commit_assignment(&mut self, key: &Key, master: NodeId, backups: &[NodeId]) -> Duration {
        if !self.coord.is_replicated() {
            return Duration::ZERO;
        }
        let origin = self.coord_origin();
        self.coord
            .propose(
                Command::AssignTablet {
                    key: *key,
                    master,
                    backups: backups.to_vec(),
                },
                origin,
                self.clock,
                self.partition.as_deref(),
            )
            .unwrap_or(Duration::ZERO)
    }

    /// Commits a tablet retirement through the replicated log (no-op in
    /// single-replica mode).
    fn commit_retirement(&mut self, key: &Key) {
        if !self.coord.is_replicated() {
            return;
        }
        let origin = self.coord_origin();
        let _ = self.coord.propose(
            Command::RetireTablet { key: *key },
            origin,
            self.clock,
            self.partition.as_deref(),
        );
    }

    /// Whether `observer`'s side of the network holds the coordinator
    /// quorum (always true with the single-replica coordinator).
    fn coord_observed_quorum(&self, observer: NodeId) -> bool {
        self.coord.can_serve(observer, self.partition.as_deref())
    }

    /// The node a coordinator-internal operation originates from: the
    /// leader's co-located node, or node 0 while headless.
    fn coord_origin(&self) -> NodeId {
        self.coord.leader().unwrap_or(0)
    }

    /// Whether nodes `a` and `b` can exchange messages under the current
    /// partition (same reachability group, or no partition at all).
    fn reachable(&self, a: NodeId, b: NodeId) -> bool {
        match &self.partition {
            Some(groups) => groups.get(a) == groups.get(b),
            None => true,
        }
    }

    fn consume_transient(&mut self) -> bool {
        if self.transient_budget > 0 {
            self.transient_budget -= 1;
            self.metrics.transient_errors.inc();
            true
        } else {
            false
        }
    }

    fn inflate(&self, node: NodeId, base: Duration) -> Duration {
        let factor = self.slowdown.get(node).copied().unwrap_or(1.0);
        if factor > 1.0 {
            base.mul_f64(factor)
        } else {
            base
        }
    }

    fn remove_entry(&mut self, key: &Key) -> u64 {
        // A later flush must not resurrect a retired placement.
        self.batcher.purge_key(key);
        *self.versions.entry(*key).or_insert(0) += 1;
        let mut size = 0;
        if let Some(master) = self.tablet.remove(key) {
            if let Some(obj) = self.nodes[master].remove_master(key) {
                size = obj.value.size();
            }
        }
        if let Some(backups) = self.replicas.remove(key) {
            for b in backups {
                self.nodes[b].remove_backup(key);
            }
        }
        size
    }

    fn place_master(&self, home: NodeId, size: u64) -> Option<NodeId> {
        let fits = |n: &StorageNode| {
            n.is_up() && n.available_bytes() >= size.max(1) && self.reachable(home, n.id())
        };
        if home < self.nodes.len() && fits(&self.nodes[home]) {
            return Some(home);
        }
        self.nodes
            .iter()
            .filter(|n| fits(n))
            .max_by_key(|n| n.available_bytes())
            .map(StorageNode::id)
    }

    /// Master placement with sharding: the shard's anchor node takes the
    /// master while it has room, concentrating each shard's tablet range
    /// the way RAMCloud partitions its key space; a full or down anchor
    /// falls back to the unsharded home/roomiest policy. With one shard
    /// this is exactly [`Cluster::place_master`].
    fn place_master_in_shard(&self, shard: ShardId, home: NodeId, size: u64) -> Option<NodeId> {
        if self.router.shards() > 1 {
            let anchor = self.shard_master(shard);
            let n = &self.nodes[anchor];
            if n.is_up() && n.available_bytes() >= size.max(1) && self.reachable(home, anchor) {
                return Some(anchor);
            }
        }
        self.place_master(home, size)
    }

    fn max_node_available(&self) -> u64 {
        self.nodes
            .iter()
            .filter(|n| n.is_up())
            .map(StorageNode::available_bytes)
            .max()
            .unwrap_or(0)
    }

    fn pick_backups(&self, master: NodeId) -> Vec<NodeId> {
        self.ring_from(master)
            .filter(|&n| n != master && self.nodes[n].is_up() && self.reachable(master, n))
            .take(self.cfg.replication_factor)
            .collect()
    }

    fn ring_from(&self, start: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        let n = self.nodes.len();
        (1..=n).map(move |i| (start + i) % n)
    }

    /// Walks the ring from `master`, storing backup copies of `key` on
    /// live nodes until `backups` reaches the replication factor. Shared
    /// tail of the crash/restart/drain re-replication paths.
    fn top_up_replication(
        &mut self,
        key: &Key,
        master: NodeId,
        value: &Value,
        mut backups: Vec<NodeId>,
    ) -> Vec<NodeId> {
        let ring: Vec<NodeId> = self.ring_from(master).collect();
        for candidate in ring {
            if backups.len() >= self.cfg.replication_factor {
                break;
            }
            if candidate != master
                && self.nodes[candidate].is_up()
                && self.reachable(master, candidate)
                && !backups.contains(&candidate)
            {
                // ofc-lint: allow(hotloop) reason=re-replication hands each new backup an owned value; Bytes-backed refcount bump
                self.nodes[candidate].store_backup(*key, value.clone());
                backups.push(candidate);
            }
        }
        backups
    }

    /// Number of shards of the key space (1 = unsharded).
    pub fn shards(&self) -> usize {
        self.router.shards()
    }

    /// The shard owning `key`.
    pub fn shard_of(&self, key: &Key) -> ShardId {
        self.router.shard_of(key)
    }

    /// The anchor node of `shard`: where its masters land while the anchor
    /// has room — and the node shard-targeted faults aim at. A committed
    /// re-anchoring (the anchor was confirmed dead) overrides the default
    /// `shard % nodes` placement.
    pub fn shard_master(&self, shard: ShardId) -> NodeId {
        self.anchor_overrides
            .get(&shard)
            .copied()
            .unwrap_or(shard % self.nodes.len())
    }

    /// Whether replica batching is enabled (batch threshold above one).
    pub fn batching(&self) -> bool {
        self.cfg.shard.batching()
    }

    /// Replica writes buffered and not yet flushed to their backup nodes.
    pub fn pending_replication(&self) -> usize {
        self.batcher.pending_entries()
    }

    /// Flushes every pending replication buffer to its backup node (the
    /// sim-clock flush tick, and the prelude to every structural
    /// operation). Returns the number of buffers flushed; a no-op without
    /// batching.
    pub fn flush_replication(&mut self) -> usize {
        let mut flushed = 0;
        for ((_, backup), entries) in self.batcher.drain() {
            self.metrics.batch_flushes.inc();
            self.nodes[backup].store_backups(entries);
            flushed += 1;
        }
        flushed
    }

    /// Flushes one (shard, backup) buffer — the batch-threshold path.
    fn flush_pair(&mut self, shard: ShardId, backup: NodeId) {
        let entries = self.batcher.take(shard, backup);
        if entries.is_empty() {
            return;
        }
        self.metrics.batch_flushes.inc();
        self.nodes[backup].store_backups(entries);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(s: &str) -> Key {
        Key::from(s)
    }

    fn cluster() -> Cluster {
        Cluster::new(ClusterConfig {
            nodes: 4,
            replication_factor: 2,
            node_pool_bytes: 4 << 20,
            max_object_bytes: 1 << 20,
            segment_bytes: 1 << 20,
            ..ClusterConfig::default()
        })
    }

    #[test]
    fn write_places_on_home_and_replicates() {
        let mut c = cluster();
        let t = c.write(1, &key("a"), Value::synthetic(1000), SimTime::ZERO);
        assert_eq!(t.result.unwrap(), 1);
        assert_eq!(c.master_of(&key("a")), Some(1));
        assert_eq!(c.backups_of(&key("a")), &[2, 3]);
        assert_eq!(c.live_replicas(&key("a")), 2);
    }

    #[test]
    fn read_locality_distinguished() {
        let mut c = cluster();
        c.write(1, &key("a"), Value::synthetic(10), SimTime::ZERO)
            .result
            .unwrap();
        let local = c.read(1, &key("a"), SimTime::ZERO);
        let remote = c.read(0, &key("a"), SimTime::ZERO);
        assert_eq!(local.result.unwrap().1, ReadLocality::LocalHit);
        assert_eq!(remote.result.unwrap().1, ReadLocality::RemoteHit);
        assert!(remote.latency > local.latency);
        let m = c.telemetry().metrics();
        assert_eq!(
            (
                m.counter("rcstore.local_hits"),
                m.counter("rcstore.remote_hits")
            ),
            (1, 1)
        );
    }

    #[test]
    fn miss_reported() {
        let mut c = cluster();
        assert!(c.read(0, &key("nope"), SimTime::ZERO).result.is_err());
        assert_eq!(c.telemetry().metrics().counter("rcstore.misses"), 1);
    }

    #[test]
    fn oversized_object_rejected() {
        let mut c = cluster();
        let t = c.write(0, &key("big"), Value::synthetic(2 << 20), SimTime::ZERO);
        assert!(matches!(t.result, Err(RcError::ObjectTooLarge { .. })));
    }

    #[test]
    fn full_home_spills_to_roomiest_node() {
        let mut c = cluster();
        // Fill node 0 (pool 4 MB, objects 1 MB each).
        for i in 0..4 {
            c.write(
                0,
                &key(&format!("f{i}")),
                Value::synthetic(1 << 20),
                SimTime::ZERO,
            )
            .result
            .unwrap();
        }
        let t = c.write(0, &key("spill"), Value::synthetic(1 << 20), SimTime::ZERO);
        let master = t.result.unwrap();
        assert_ne!(master, 0);
    }

    #[test]
    fn dirty_objects_resist_eviction_until_clean() {
        let mut c = cluster();
        c.write(0, &key("a"), Value::synthetic(10), SimTime::ZERO)
            .result
            .unwrap();
        assert_eq!(c.is_dirty(&key("a")), Some(true));
        assert!(matches!(c.evict(&key("a")).result, Err(RcError::Dirty(_))));
        c.mark_clean(&key("a")).unwrap();
        assert_eq!(c.evict(&key("a")).result.unwrap(), 10);
        assert!(!c.contains(&key("a")));
        // Backups must be gone too.
        for n in 0..4 {
            assert!(!c.node(n).has_backup(&key("a")));
        }
    }

    #[test]
    fn delete_is_unconditional() {
        let mut c = cluster();
        c.write(0, &key("tmp"), Value::synthetic(10), SimTime::ZERO)
            .result
            .unwrap();
        assert_eq!(c.delete(&key("tmp")).result.unwrap(), 10);
        assert!(!c.contains(&key("tmp")));
    }

    #[test]
    fn migration_by_promotion_moves_master_without_copying() {
        let mut c = cluster();
        c.write_with_dirty(1, &key("hot"), Value::synthetic(1000), SimTime::ZERO, false)
            .result
            .unwrap();
        let before_backups = c.backups_of(&key("hot")).to_vec();
        let t = c.migrate_by_promotion(&key("hot"), SimTime::from_secs(1));
        let new_master = t.result.unwrap();
        assert!(before_backups.contains(&new_master));
        assert_eq!(c.master_of(&key("hot")), Some(new_master));
        // Old master (1) is now a backup: replication factor preserved.
        assert_eq!(c.live_replicas(&key("hot")), 2);
        assert!(c.node(1).has_backup(&key("hot")));
        assert!(!c.node(1).has_master(&key("hot")));
        assert_eq!(c.telemetry().metrics().counter("rcstore.promotions"), 1);
        assert_eq!(c.telemetry().trace().phase_count(Phase::Migrate), 1);
    }

    #[test]
    fn promotion_latency_scales_with_size() {
        let mut c = cluster();
        c.write_with_dirty(
            0,
            &key("s"),
            Value::synthetic(8 << 10),
            SimTime::ZERO,
            false,
        )
        .result
        .unwrap();
        c.write_with_dirty(
            0,
            &key("l"),
            Value::synthetic(1 << 20),
            SimTime::ZERO,
            false,
        )
        .result
        .unwrap();
        let small = c.migrate_by_promotion(&key("s"), SimTime::ZERO).latency;
        let large = c.migrate_by_promotion(&key("l"), SimTime::ZERO).latency;
        assert!(large > small);
    }

    #[test]
    fn resize_pool_guards_live_data() {
        let mut c = cluster();
        c.write_with_dirty(
            0,
            &key("a"),
            Value::synthetic(1 << 20),
            SimTime::ZERO,
            false,
        )
        .result
        .unwrap();
        // Shrinking node 0 below its live bytes is refused.
        let t = c.resize_pool(0, 100);
        assert!(matches!(t.result, Err(RcError::OutOfMemory { .. })));
        // Evict, then shrink succeeds.
        c.mark_clean(&key("a")).ok();
        c.evict(&key("a")).result.unwrap();
        c.resize_pool(0, 100).result.unwrap();
        assert_eq!(c.node(0).pool_bytes(), 100);
        // The refused shrink is not counted; only the successful one is.
        let m = c.telemetry().metrics();
        assert_eq!(
            (
                m.counter("rcstore.scale_ups"),
                m.counter("rcstore.scale_downs")
            ),
            (0, 1)
        );
    }

    #[test]
    fn crash_recovery_promotes_and_restores_replication() {
        let mut c = cluster();
        for i in 0..3 {
            c.write_with_dirty(
                0,
                &key(&format!("k{i}")),
                Value::synthetic(1000),
                SimTime::ZERO,
                false,
            )
            .result
            .unwrap();
        }
        let lost = c.crash_node(0, SimTime::ZERO);
        assert_eq!(lost.result, 0, "replicated data must survive");
        for i in 0..3 {
            let k = key(&format!("k{i}"));
            let master = c.master_of(&k).expect("still cached");
            assert_ne!(master, 0);
            assert_eq!(c.live_replicas(&k), 2, "replication factor restored");
            // Data still readable.
            assert!(c.read(1, &k, SimTime::ZERO).result.is_ok());
        }
    }

    #[test]
    fn unreplicated_cluster_loses_data_on_crash() {
        let mut c = Cluster::new(ClusterConfig {
            nodes: 2,
            replication_factor: 0,
            node_pool_bytes: 1 << 20,
            max_object_bytes: 1 << 20,
            segment_bytes: 1 << 20,
            ..ClusterConfig::default()
        });
        c.write_with_dirty(0, &key("a"), Value::synthetic(10), SimTime::ZERO, false)
            .result
            .unwrap();
        let lost = c.crash_node(0, SimTime::from_secs(3));
        assert_eq!(lost.result, 1);
        assert!(!c.contains(&key("a")));
        // The loss is surfaced: counter plus a recovery span on the trace.
        assert_eq!(c.telemetry().metrics().counter("rcstore.objects_lost"), 1);
        assert_eq!(c.telemetry().trace().phase_count(Phase::Recovery), 1);
    }

    #[test]
    fn restart_rejoins_empty() {
        let mut c = cluster();
        c.write_with_dirty(0, &key("a"), Value::synthetic(10), SimTime::ZERO, false)
            .result
            .unwrap();
        c.crash_node(0, SimTime::ZERO);
        c.restart_node(0, SimTime::ZERO);
        assert!(c.node(0).is_up());
        assert_eq!(c.node(0).master_count(), 0);
        // New writes can land on it again.
        c.write(0, &key("b"), Value::synthetic(10), SimTime::ZERO)
            .result
            .unwrap();
        assert_eq!(c.master_of(&key("b")), Some(0));
    }

    #[test]
    fn overwrite_replaces_placement() {
        let mut c = cluster();
        c.write(0, &key("a"), Value::synthetic(100), SimTime::ZERO)
            .result
            .unwrap();
        c.write(2, &key("a"), Value::synthetic(200), SimTime::ZERO)
            .result
            .unwrap();
        assert_eq!(c.master_of(&key("a")), Some(2));
        assert_eq!(c.len(), 1);
        let (v, _) = c.read(2, &key("a"), SimTime::ZERO).result.unwrap();
        assert_eq!(v.size(), 200);
    }

    #[test]
    fn injected_transient_errors_fail_then_clear() {
        let mut c = cluster();
        c.write(0, &key("a"), Value::synthetic(10), SimTime::ZERO)
            .result
            .unwrap();
        c.inject_transient_errors(2);
        let r1 = c.read(0, &key("a"), SimTime::ZERO).result;
        let w1 = c
            .write(0, &key("b"), Value::synthetic(5), SimTime::ZERO)
            .result;
        assert_eq!(r1, Err(RcError::Transient));
        assert_eq!(w1, Err(RcError::Transient));
        assert!(RcError::Transient.is_transient());
        // Budget exhausted: operations succeed again.
        assert!(c.read(0, &key("a"), SimTime::ZERO).result.is_ok());
        assert_eq!(
            c.telemetry().metrics().counter("rcstore.transient_errors"),
            2
        );
    }

    #[test]
    fn slow_node_inflates_latency_until_restored() {
        let mut c = cluster();
        c.write(1, &key("a"), Value::synthetic(4096), SimTime::ZERO)
            .result
            .unwrap();
        let nominal = c.read(1, &key("a"), SimTime::ZERO).latency;
        c.set_node_slowdown(1, 8.0);
        let slowed = c.read(1, &key("a"), SimTime::ZERO).latency;
        assert_eq!(slowed, nominal.mul_f64(8.0));
        c.clear_node_slowdown(1);
        assert_eq!(c.read(1, &key("a"), SimTime::ZERO).latency, nominal);
    }

    #[test]
    fn crash_after_writes_fires_between_writes() {
        let mut c = cluster();
        c.crash_after_writes(2, 0);
        c.write(0, &key("w1"), Value::synthetic(10), SimTime::ZERO)
            .result
            .unwrap();
        assert!(c.node(0).is_up(), "one write armed, not yet fired");
        c.write(1, &key("w2"), Value::synthetic(10), SimTime::ZERO)
            .result
            .unwrap();
        assert!(!c.node(0).is_up(), "second write trips the crash");
        // Replicated data survived the crash.
        assert!(c.read(1, &key("w1"), SimTime::ZERO).result.is_ok());
        assert_eq!(c.telemetry().metrics().counter("rcstore.objects_lost"), 0);
    }

    #[test]
    fn stats_accumulate_across_reads() {
        let mut c = cluster();
        c.write(0, &key("a"), Value::synthetic(10), SimTime::ZERO)
            .result
            .unwrap();
        for i in 1..=5u64 {
            c.read(0, &key("a"), SimTime::from_secs(i)).result.unwrap();
        }
        let stats = c.stats_of(&key("a")).unwrap();
        assert_eq!(stats.n_access, 5);
        assert_eq!(stats.t_access, SimTime::from_secs(5));
    }
}

#[cfg(test)]
mod elasticity_tests {
    use super::*;

    fn key(s: &str) -> Key {
        Key::from(s)
    }

    fn small_cluster() -> Cluster {
        Cluster::new(ClusterConfig {
            nodes: 3,
            replication_factor: 1,
            node_pool_bytes: 8 << 20,
            max_object_bytes: 1 << 20,
            segment_bytes: 1 << 20,
            ..ClusterConfig::default()
        })
    }

    #[test]
    fn add_node_expands_capacity_and_receives_writes() {
        let mut c = small_cluster();
        // Fill the original nodes.
        let mut written = 0;
        for i in 0..100 {
            if c.write(
                0,
                &key(&format!("k{i}")),
                Value::synthetic(1 << 20),
                SimTime::ZERO,
            )
            .result
            .is_ok()
            {
                written += 1;
            } else {
                break;
            }
        }
        assert!(written < 30, "original capacity should be ~24 objects");
        // Scale out: the new node absorbs further writes.
        let new = c.add_node(8 << 20);
        assert_eq!(new, 3);
        assert_eq!(c.n_nodes(), 4);
        let t = c.write(0, &key("fresh"), Value::synthetic(1 << 20), SimTime::ZERO);
        assert_eq!(t.result.unwrap(), new, "spill lands on the new node");
    }

    #[test]
    fn added_node_participates_in_replication() {
        let mut c = small_cluster();
        let new = c.add_node(8 << 20);
        c.write(new, &key("a"), Value::synthetic(1000), SimTime::ZERO)
            .result
            .unwrap();
        assert_eq!(c.master_of(&key("a")), Some(new));
        assert_eq!(c.live_replicas(&key("a")), 1);
    }

    #[test]
    fn drain_node_preserves_data_and_takes_node_down() {
        let mut c = small_cluster();
        for i in 0..5 {
            c.write_with_dirty(
                0,
                &key(&format!("k{i}")),
                Value::synthetic(1 << 20),
                SimTime::ZERO,
                false,
            )
            .result
            .unwrap();
        }
        let victim = c.master_of(&key("k0")).unwrap();
        let t = c.drain_node(victim, SimTime::ZERO);
        assert_eq!(t.result, 0, "nothing may be lost on a planned drain");
        assert!(!c.node(victim).is_up());
        for i in 0..5 {
            let k = key(&format!("k{i}"));
            assert!(c.contains(&k), "k{i} lost");
            let master = c.master_of(&k).unwrap();
            assert_ne!(master, victim);
            assert!(c.read(0, &k, SimTime::ZERO).result.is_ok());
        }
    }

    #[test]
    fn drain_without_backups_copies_instead() {
        // Replication factor 0: promotion is impossible, the drain must
        // fall back to full copies.
        let mut c = Cluster::new(ClusterConfig {
            nodes: 2,
            replication_factor: 0,
            node_pool_bytes: 8 << 20,
            max_object_bytes: 1 << 20,
            segment_bytes: 1 << 20,
            ..ClusterConfig::default()
        });
        c.write_with_dirty(
            0,
            &key("a"),
            Value::synthetic(1 << 20),
            SimTime::ZERO,
            false,
        )
        .result
        .unwrap();
        let t = c.drain_node(0, SimTime::ZERO);
        assert_eq!(t.result, 0);
        assert_eq!(c.master_of(&key("a")), Some(1));
        assert!(c.read(1, &key("a"), SimTime::ZERO).result.is_ok());
    }

    #[test]
    fn drain_then_add_back_round_trips() {
        let mut c = small_cluster();
        c.write_with_dirty(0, &key("a"), Value::synthetic(1000), SimTime::ZERO, false)
            .result
            .unwrap();
        c.drain_node(0, SimTime::ZERO);
        let replacement = c.add_node(8 << 20);
        assert_eq!(replacement, 3);
        // The cluster keeps serving, including placements on the new node.
        c.write(
            replacement,
            &key("b"),
            Value::synthetic(1000),
            SimTime::ZERO,
        )
        .result
        .unwrap();
        assert!(c.contains(&key("a")));
        assert!(c.contains(&key("b")));
    }
}

#[cfg(test)]
mod shard_tests {
    use super::*;
    use crate::shard::ShardConfig;

    fn key(s: &str) -> Key {
        Key::from(s)
    }

    fn sharded_cluster(shards: usize, batch: usize) -> Cluster {
        Cluster::new(ClusterConfig {
            nodes: 4,
            replication_factor: 2,
            node_pool_bytes: 16 << 20,
            max_object_bytes: 1 << 20,
            segment_bytes: 1 << 20,
            shard: ShardConfig {
                shards,
                batch_max_entries: batch,
                ..ShardConfig::default()
            },
            ..ClusterConfig::default()
        })
    }

    #[test]
    fn single_shard_config_preserves_unsharded_placement() {
        // shards=1, batch=1 must behave exactly like the legacy plane.
        let mut c = sharded_cluster(1, 1);
        let t = c.write(1, &key("a"), Value::synthetic(1000), SimTime::ZERO);
        assert_eq!(t.result.unwrap(), 1, "home placement, no anchor");
        assert_eq!(c.backups_of(&key("a")), &[2, 3]);
        assert_eq!(c.live_replicas(&key("a")), 2, "synchronous replication");
        assert_eq!(c.pending_replication(), 0);
        let m = c.telemetry().metrics();
        assert_eq!(m.counter("rcstore.batched_appends"), 0);
        assert_eq!(m.counter("rcstore.batch_flushes"), 0);
    }

    #[test]
    fn masters_anchor_on_their_shard_regardless_of_home() {
        let mut c = sharded_cluster(4, 1);
        for i in 0..32 {
            let k = key(&format!("obj/{i}"));
            let master = c.write(0, &k, Value::synthetic(1000), SimTime::ZERO);
            let anchor = c.shard_master(c.shard_of(&k));
            assert_eq!(master.result.unwrap(), anchor, "key {k} off its anchor");
            assert_eq!(c.master_of(&k), Some(anchor));
        }
        // The mapping is stable: re-deriving shards gives the same anchors.
        for i in 0..32 {
            let k = key(&format!("obj/{i}"));
            assert_eq!(c.master_of(&k), Some(c.shard_master(c.shard_of(&k))));
        }
    }

    #[test]
    fn batched_writes_defer_replicas_until_threshold_or_flush() {
        let mut c = sharded_cluster(1, 4);
        c.write(0, &key("a"), Value::synthetic(100), SimTime::ZERO)
            .result
            .unwrap();
        // Acked, master present, but replicas still pending (2 backups).
        assert!(c.contains(&key("a")));
        assert_eq!(c.pending_replication(), 2);
        assert_eq!(c.live_replicas(&key("a")), 0, "replicas not yet physical");
        let flushed = c.flush_replication();
        assert_eq!(flushed, 2, "one buffer per (shard, backup) pair");
        assert_eq!(c.live_replicas(&key("a")), 2);
        assert_eq!(c.pending_replication(), 0);
        let m = c.telemetry().metrics();
        assert_eq!(m.counter("rcstore.batched_appends"), 2);
        assert_eq!(m.counter("rcstore.batch_flushes"), 2);
    }

    #[test]
    fn buffer_reaching_threshold_flushes_inline() {
        let mut c = sharded_cluster(1, 2);
        // Two writes from home 0 land masters on node 0, backups on {1, 2}:
        // each (0, backup) buffer reaches the threshold on the second write.
        c.write(0, &key("a"), Value::synthetic(100), SimTime::ZERO)
            .result
            .unwrap();
        assert_eq!(c.pending_replication(), 2);
        c.write(0, &key("b"), Value::synthetic(100), SimTime::ZERO)
            .result
            .unwrap();
        assert_eq!(c.pending_replication(), 0, "threshold flushed inline");
        assert_eq!(c.live_replicas(&key("a")), 2);
        assert_eq!(c.live_replicas(&key("b")), 2);
        assert_eq!(
            c.telemetry().metrics().counter("rcstore.batch_flushes"),
            2,
            "one flush per full (shard, backup) buffer"
        );
    }

    #[test]
    fn batched_writes_are_cheaper_on_the_critical_path() {
        let mut batched = sharded_cluster(1, 8);
        let mut sync = sharded_cluster(1, 1);
        let fast = batched
            .write(0, &key("a"), Value::synthetic(64 << 10), SimTime::ZERO)
            .latency;
        let slow = sync
            .write(0, &key("a"), Value::synthetic(64 << 10), SimTime::ZERO)
            .latency;
        assert_eq!(slow - fast, batched.config().latency.replication_ack);
    }

    #[test]
    fn crash_flushes_pending_batches_first_so_no_acked_write_is_lost() {
        let mut c = sharded_cluster(4, 8);
        let mut keys = Vec::new();
        for i in 0..16 {
            let k = key(&format!("obj/{i}"));
            c.write_with_dirty(0, &k, Value::synthetic(1000), SimTime::ZERO, false)
                .result
                .unwrap();
            keys.push(k);
        }
        assert!(c.pending_replication() > 0, "some replicas still buffered");
        // Crash every shard anchor in turn (staying above 2 live nodes is
        // not needed here: replication is restored after each crash).
        let victim = c.shard_master(0);
        c.crash_node(victim, SimTime::ZERO);
        for k in &keys {
            assert!(c.contains(k), "{k} lost");
            assert!(
                c.read(1, k, SimTime::ZERO).result.is_ok(),
                "{k} unreadable after anchor crash"
            );
        }
        assert_eq!(c.telemetry().metrics().counter("rcstore.objects_lost"), 0);
    }

    #[test]
    fn delete_purges_pending_replicas() {
        let mut c = sharded_cluster(1, 8);
        c.write(0, &key("tmp"), Value::synthetic(100), SimTime::ZERO)
            .result
            .unwrap();
        assert_eq!(c.pending_replication(), 2);
        c.delete(&key("tmp")).result.unwrap();
        assert_eq!(c.pending_replication(), 0);
        c.flush_replication();
        for n in 0..4 {
            assert!(
                !c.node(n).has_backup(&key("tmp")),
                "deleted key resurrected on node {n}"
            );
        }
    }

    #[test]
    fn overwrite_keeps_only_newest_pending_value() {
        let mut c = sharded_cluster(1, 8);
        c.write(0, &key("a"), Value::synthetic(100), SimTime::ZERO)
            .result
            .unwrap();
        c.write(0, &key("a"), Value::synthetic(200), SimTime::ZERO)
            .result
            .unwrap();
        // The overwrite retired the first placement (and its pending
        // entries): exactly one pending replica per backup remains.
        assert_eq!(c.pending_replication(), 2);
        c.flush_replication();
        let backups = c.backups_of(&key("a")).to_vec();
        for b in backups {
            assert_eq!(
                c.node(b).peek_master(&key("a")).map(|o| o.value.size()),
                None
            );
            assert!(c.node(b).has_backup(&key("a")));
        }
        let (v, _) = c.read(0, &key("a"), SimTime::ZERO).result.unwrap();
        assert_eq!(v.size(), 200);
    }

    #[test]
    fn migration_flushes_before_promoting() {
        let mut c = sharded_cluster(1, 8);
        c.write_with_dirty(0, &key("hot"), Value::synthetic(1000), SimTime::ZERO, false)
            .result
            .unwrap();
        assert_eq!(c.live_replicas(&key("hot")), 0, "replicas pending");
        // Promotion needs a physical backup copy: the implicit flush makes
        // one available, so migration succeeds instead of erroring.
        let t = c.migrate_by_promotion(&key("hot"), SimTime::ZERO);
        assert!(t.result.is_ok());
        assert_eq!(c.live_replicas(&key("hot")), 2);
    }
}

#[cfg(test)]
mod failover_tests {
    use super::*;
    use crate::gossip::GossipConfig;
    use crate::raft::RaftConfig;

    fn key(s: &str) -> Key {
        Key::from(s)
    }

    fn base_config() -> ClusterConfig {
        ClusterConfig {
            nodes: 4,
            replication_factor: 2,
            node_pool_bytes: 4 << 20,
            max_object_bytes: 1 << 20,
            segment_bytes: 1 << 20,
            ..ClusterConfig::default()
        }
    }

    fn replicated() -> Cluster {
        Cluster::new(ClusterConfig {
            raft: RaftConfig {
                replicas: 3,
                ..RaftConfig::default()
            },
            ..base_config()
        })
    }

    fn gossiped() -> Cluster {
        Cluster::new(ClusterConfig {
            gossip: GossipConfig {
                enabled: true,
                ..GossipConfig::default()
            },
            ..base_config()
        })
    }

    /// Enough pump rounds, spaced past the election timeout ceiling, to
    /// elect a leader whenever one side can form a quorum.
    fn settle(c: &mut Cluster, from: SimTime) -> SimTime {
        let mut t = from;
        for _ in 0..4 {
            t += Duration::from_millis(400);
            c.coordinator_pump(t);
        }
        t
    }

    #[test]
    fn crash_restart_drain_sequence_keeps_every_acked_write() {
        let mut c = Cluster::new(base_config());
        for i in 0..8 {
            c.write(
                i % 4,
                &key(&format!("k{i}")),
                Value::synthetic(1000),
                SimTime::ZERO,
            )
            .result
            .unwrap();
        }
        c.crash_node(1, SimTime::from_secs(1));
        c.restart_node(1, SimTime::from_secs(2));
        let drained = c.drain_node(2, SimTime::from_secs(3));
        assert_eq!(drained.result, 0, "planned drain preserves every object");
        assert!(!c.node(2).is_up(), "drained node left service");
        for i in 0..8 {
            let r = c.read(0, &key(&format!("k{i}")), SimTime::from_secs(4));
            assert!(r.result.is_ok(), "k{i} lost across crash/restart/drain");
        }
        assert_eq!(c.telemetry().metrics().counter("rcstore.objects_lost"), 0);
    }

    #[test]
    fn double_crash_before_restart_walks_top_up_twice() {
        let mut c = Cluster::new(base_config());
        c.write(1, &key("a"), Value::synthetic(1000), SimTime::ZERO)
            .result
            .unwrap();
        assert_eq!(c.backups_of(&key("a")), &[2, 3]);
        // First backup dies: the weakened walk recruits the only spare.
        c.crash_node(2, SimTime::from_secs(1));
        assert_eq!(c.live_replicas(&key("a")), 2);
        assert_eq!(c.backups_of(&key("a")), &[3, 0]);
        // Second backup dies before the first returns: only one candidate
        // is left, so replication degrades to 1 — but never to 0.
        c.crash_node(3, SimTime::from_secs(2));
        assert_eq!(c.live_replicas(&key("a")), 1);
        assert_eq!(c.backups_of(&key("a")), &[0]);
        assert!(c.read(0, &key("a"), SimTime::from_secs(3)).result.is_ok());
        // Both return: the restart walk tops replication back up to 2.
        c.restart_node(2, SimTime::from_secs(4));
        c.restart_node(3, SimTime::from_secs(5));
        assert_eq!(c.live_replicas(&key("a")), 2);
        assert_eq!(c.telemetry().metrics().counter("rcstore.objects_lost"), 0);
    }

    #[test]
    fn leader_crash_elects_and_service_resumes() {
        let mut c = replicated();
        c.write(0, &key("a"), Value::synthetic(100), SimTime::ZERO)
            .result
            .unwrap();
        assert_eq!(c.coordinator().leader(), Some(0));
        let term_before = c.coordinator().term();
        c.crash_coordinator(0, SimTime::from_secs(1));
        let t = settle(&mut c, SimTime::from_secs(1));
        let leader = c.coordinator().leader().expect("new leader elected");
        assert_ne!(leader, 0);
        assert!(c.coordinator().term() > term_before);
        // Service resumes: control-plane mutations commit again.
        c.write(2, &key("b"), Value::synthetic(100), t)
            .result
            .unwrap();
        assert!(c.read(1, &key("b"), t).result.is_ok());
        // The crashed replica rejoins and catches up from the log.
        c.restart_coordinator(0, t + Duration::from_secs(1));
        let t2 = settle(&mut c, t + Duration::from_secs(1));
        c.write(3, &key("c"), Value::synthetic(100), t2)
            .result
            .unwrap();
        assert_eq!(
            c.coordinator().leader(),
            Some(leader),
            "a healthy leader is not deposed by a rejoin"
        );
    }

    #[test]
    fn headless_coordinator_defers_recovery_until_quorum_returns() {
        let mut c = replicated();
        c.write(1, &key("a"), Value::synthetic(1000), SimTime::ZERO)
            .result
            .unwrap();
        // Two of three replicas down: no quorum anywhere.
        c.crash_coordinator(0, SimTime::from_secs(1));
        c.crash_coordinator(1, SimTime::from_secs(1));
        settle(&mut c, SimTime::from_secs(1));
        assert_eq!(c.coordinator().leader(), None);
        // A data-node crash while headless cannot be acted on: recovery is
        // parked, and writes bounce with a typed transient error.
        c.crash_node(1, SimTime::from_secs(2));
        assert_eq!(c.deferred_recoveries(), 1);
        let w = c.write(2, &key("b"), Value::synthetic(100), SimTime::from_secs(2));
        assert!(matches!(w.result, Err(RcError::Transient)));
        // Quorum returns: the pump drains the parked recovery.
        c.restart_coordinator(0, SimTime::from_secs(3));
        let t = settle(&mut c, SimTime::from_secs(3));
        assert_eq!(c.deferred_recoveries(), 0);
        assert!(c.read(0, &key("a"), t).result.is_ok(), "re-mastered");
        assert_eq!(c.telemetry().metrics().counter("rcstore.objects_lost"), 0);
        c.write(2, &key("b"), Value::synthetic(100), t)
            .result
            .unwrap();
    }

    #[test]
    fn minority_partition_rejects_writes_and_heals_clean() {
        let mut c = replicated();
        c.write(3, &key("a"), Value::synthetic(1000), SimTime::ZERO)
            .result
            .unwrap();
        // Coordinators live on nodes 0..3; isolating node 0 leaves a
        // 2-of-3 quorum with nodes 1-3.
        c.partition_network(&[vec![0], vec![1, 2, 3]], SimTime::from_secs(1));
        let t = settle(&mut c, SimTime::from_secs(1));
        assert!(c.partitioned());
        // Minority side: typed transient rejection, never silent loss.
        let w = c.write(0, &key("m"), Value::synthetic(100), t);
        assert!(matches!(w.result, Err(RcError::Transient)));
        // Majority side keeps serving.
        c.write(1, &key("q"), Value::synthetic(100), t)
            .result
            .unwrap();
        assert!(c.read(2, &key("q"), t).result.is_ok());
        c.heal_partition(t + Duration::from_secs(1));
        let t2 = settle(&mut c, t + Duration::from_secs(1));
        // Everyone serves again, nothing was lost.
        c.write(0, &key("m"), Value::synthetic(100), t2)
            .result
            .unwrap();
        assert!(c.read(0, &key("a"), t2).result.is_ok());
        assert_eq!(c.telemetry().metrics().counter("rcstore.objects_lost"), 0);
    }

    #[test]
    fn isolated_leader_steps_down_and_majority_reelects() {
        let mut c = replicated();
        let old = c.isolate_leader(SimTime::from_secs(1)).unwrap();
        assert_eq!(old, 0);
        let t = settle(&mut c, SimTime::from_secs(1));
        let new = c.coordinator().leader().expect("majority re-elected");
        assert_ne!(new, old);
        // The old leader's side cannot commit; the majority side can.
        let w = c.write(old, &key("x"), Value::synthetic(100), t);
        assert!(matches!(w.result, Err(RcError::Transient)));
        c.write(new, &key("y"), Value::synthetic(100), t)
            .result
            .unwrap();
        c.heal_partition(t + Duration::from_secs(1));
        let t2 = settle(&mut c, t + Duration::from_secs(1));
        c.write(old, &key("x"), Value::synthetic(100), t2)
            .result
            .unwrap();
    }

    #[test]
    fn gossip_confirms_dead_node_then_recovers_it() {
        let mut c = gossiped();
        c.write(1, &key("a"), Value::synthetic(1000), SimTime::ZERO)
            .result
            .unwrap();
        let master = c.master_of(&key("a")).unwrap();
        assert_eq!(master, 1);
        // A crash under gossip is *not* recovered omnisciently: the tablet
        // map still points at the dead node until membership confirms it.
        c.crash_node(1, SimTime::from_secs(1));
        assert_eq!(c.master_of(&key("a")), Some(1));
        // Drive probe rounds until suspicion matures into confirmation
        // (period 1 s, confirm_after 3 s).
        let mut t = SimTime::from_secs(1);
        let mut confirmed = false;
        for _ in 0..20 {
            t += c.gossip_period();
            let events = c.gossip_round(t);
            if events
                .iter()
                .any(|e| matches!(e, GossipEvent::Confirmed { node: 1, .. }))
            {
                confirmed = true;
                break;
            }
        }
        assert!(confirmed, "gossip confirmed the dead node");
        assert_eq!(c.member_state(1), MemberState::Dead);
        // Confirmation triggered re-mastering off the dead node.
        let m = c.master_of(&key("a")).unwrap();
        assert_ne!(m, 1);
        assert!(c.read(0, &key("a"), t).result.is_ok());
        // The node comes back: probes refute the verdict and reconcile.
        c.restart_node(1, t);
        let mut rejoined = false;
        for _ in 0..20 {
            t += c.gossip_period();
            let events = c.gossip_round(t);
            if events
                .iter()
                .any(|e| matches!(e, GossipEvent::Rejoined { node: 1, .. }))
            {
                rejoined = true;
                break;
            }
        }
        assert!(rejoined, "gossip observed the rejoin");
        assert_eq!(c.member_state(1), MemberState::Alive);
        assert_eq!(c.telemetry().metrics().counter("rcstore.objects_lost"), 0);
    }

    #[test]
    fn partition_fences_stale_masters_on_heal() {
        let mut c = gossiped();
        c.write(3, &key("a"), Value::synthetic(1000), SimTime::ZERO)
            .result
            .unwrap();
        assert_eq!(c.master_of(&key("a")), Some(3));
        // Node 3 lands alone across the partition. Probes stop reaching
        // it, suspicion matures, and the confirmed-dead verdict re-masters
        // its keys from reachable backups — fencing the copy it still
        // holds (the node is alive, just unreachable).
        c.partition_network(&[vec![0, 1, 2], vec![3]], SimTime::from_secs(1));
        let mut t = SimTime::from_secs(1);
        let mut confirmed = false;
        for _ in 0..20 {
            t += c.gossip_period();
            let events = c.gossip_round(t);
            if events
                .iter()
                .any(|e| matches!(e, GossipEvent::Confirmed { node: 3, .. }))
            {
                confirmed = true;
                break;
            }
        }
        assert!(confirmed, "membership confirmed the unreachable node");
        let m = c.master_of(&key("a")).unwrap();
        assert_ne!(m, 3, "re-mastered off the unreachable node");
        assert!(c.read(1, &key("a"), t).result.is_ok());
        assert!(
            c.node(3).has_master(&key("a")),
            "stale copy still on the minority side, fenced"
        );
        // Heal: the fenced copy is expunged, not resurrected.
        c.heal_partition(t + Duration::from_secs(1));
        let t2 = t + Duration::from_secs(1);
        assert_eq!(c.master_of(&key("a")), Some(m));
        assert!(!c.node(3).has_master(&key("a")), "stale master expunged");
        assert!(c.read(3, &key("a"), t2).result.is_ok());
        assert_eq!(c.telemetry().metrics().counter("rcstore.objects_lost"), 0);
    }

    #[test]
    fn replicated_failover_is_deterministic_per_seed() {
        let run = || {
            let mut c = replicated();
            c.write(0, &key("a"), Value::synthetic(500), SimTime::ZERO)
                .result
                .unwrap();
            c.crash_coordinator(0, SimTime::from_secs(1));
            let t = settle(&mut c, SimTime::from_secs(1));
            c.write(1, &key("b"), Value::synthetic(500), t)
                .result
                .unwrap();
            c.isolate_leader(t + Duration::from_secs(1));
            let t2 = settle(&mut c, t + Duration::from_secs(1));
            c.heal_partition(t2);
            let t3 = settle(&mut c, t2);
            c.write(2, &key("c"), Value::synthetic(500), t3)
                .result
                .unwrap();
            (
                c.coordinator().leader(),
                c.coordinator().term(),
                c.coordinator().last_index(),
                c.telemetry().metrics().counter("raft.commits"),
            )
        };
        assert_eq!(run(), run(), "same seed, same trajectory");
    }

    #[test]
    fn single_replica_coordinator_charges_no_commit_latency() {
        let mut c = Cluster::new(base_config());
        assert!(!c.coordinator().is_replicated());
        let t = c.write(0, &key("a"), Value::synthetic(100), SimTime::ZERO);
        t.result.unwrap();
        // Raft metrics are absent entirely in the default layout: lazily
        // registered only for replicated control planes.
        assert_eq!(c.telemetry().metrics().counter("raft.commits"), 0);
        let mut r = replicated();
        let rt = r.write(0, &key("a"), Value::synthetic(100), SimTime::ZERO);
        rt.result.unwrap();
        assert!(rt.latency > t.latency, "replication charges commit latency");
        assert_eq!(r.telemetry().metrics().counter("raft.commits"), 1);
    }
}
