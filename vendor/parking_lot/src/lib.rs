//! Offline stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync` primitives with `parking_lot`'s non-poisoning API
//! (lock methods return guards directly). Poisoned locks are recovered
//! rather than propagated, matching `parking_lot` semantics where a
//! panicking holder does not poison the lock.

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Non-poisoning mutex (subset of `parking_lot::Mutex`).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a mutex holding `value`.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// Non-poisoning reader-writer lock (subset of `parking_lot::RwLock`).
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a lock holding `value`.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(1);
        *l.write() += 1;
        assert_eq!(*l.read(), 2);
    }
}
