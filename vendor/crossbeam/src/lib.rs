//! Offline stand-in for the `crossbeam` crate.
//!
//! Only the `channel` module is provided, backed by `std::sync::mpsc`.
//! The single consumer the workspace uses (one trainer thread) does not
//! need crossbeam's multi-consumer capability; the `Receiver` is still
//! `Send` so it can move into a worker thread.

pub mod channel {
    use std::sync::mpsc;

    /// Sending half of an unbounded channel.
    pub struct Sender<T>(mpsc::Sender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Sender<T> {
            Sender(self.0.clone())
        }
    }

    /// Receiving half of an unbounded channel.
    pub struct Receiver<T>(mpsc::Receiver<T>);

    /// Error returned by [`Sender::send`] when all receivers are gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] when all senders are gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty.
        Empty,
        /// All senders are gone and the channel is drained.
        Disconnected,
    }

    impl<T> Sender<T> {
        /// Enqueues `msg`; fails only when every receiver has been dropped.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            self.0.send(msg).map_err(|mpsc::SendError(v)| SendError(v))
        }
    }

    impl<T> Receiver<T> {
        /// Blocks for the next message; fails when all senders are gone
        /// and the queue is drained.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv().map_err(|_| RecvError)
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv().map_err(|e| match e {
                mpsc::TryRecvError::Empty => TryRecvError::Empty,
                mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
            })
        }
    }

    /// Creates an unbounded FIFO channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(tx), Receiver(rx))
    }
}

#[cfg(test)]
mod tests {
    use super::channel;

    #[test]
    fn send_recv_across_threads() {
        let (tx, rx) = channel::unbounded();
        let h = std::thread::spawn(move || rx.recv().unwrap());
        tx.send(7u32).unwrap();
        assert_eq!(h.join().unwrap(), 7);
    }
}
