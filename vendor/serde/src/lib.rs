//! Offline stand-in for the `serde` crate.
//!
//! The build environment has no network access, so the workspace vendors
//! a small data-model replacement: [`Serialize`] lowers a value to an
//! in-memory JSON tree ([`json::Json`]) and [`Deserialize`] lifts it
//! back. The `serde_json` stand-in renders and parses that tree. The
//! derive macros generate externally-tagged representations compatible
//! with real serde's default for the shapes this workspace uses (named
//! structs; unit / newtype / tuple / struct enum variants).

pub use serde_derive::{Deserialize, Serialize};

pub mod json;

use json::Json;

/// Deserialization error: a human-readable path/reason string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(pub String);

impl DeError {
    /// Creates an error with the given message.
    pub fn new(msg: impl Into<String>) -> DeError {
        DeError(msg.into())
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "deserialization error: {}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Lowers a value into the JSON data model.
pub trait Serialize {
    /// The JSON tree for this value.
    fn to_json(&self) -> Json;
}

/// Lifts a value out of the JSON data model.
pub trait Deserialize: Sized {
    /// Rebuilds the value from a JSON tree.
    fn from_json(v: &Json) -> Result<Self, DeError>;
}

// ---------------------------------------------------------------- scalars

macro_rules! impl_ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json(&self) -> Json { Json::U64(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_json(v: &Json) -> Result<Self, DeError> {
                let n = v.as_u64().ok_or_else(|| {
                    DeError::new(format!("expected unsigned integer, got {v:?}"))
                })?;
                <$t>::try_from(n).map_err(|_| DeError::new(format!("{n} out of range")))
            }
        }
    )*};
}
impl_ser_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json(&self) -> Json { Json::I64(*self as i64) }
        }
        impl Deserialize for $t {
            fn from_json(v: &Json) -> Result<Self, DeError> {
                let n = v.as_i64().ok_or_else(|| {
                    DeError::new(format!("expected integer, got {v:?}"))
                })?;
                <$t>::try_from(n).map_err(|_| DeError::new(format!("{n} out of range")))
            }
        }
    )*};
}
impl_ser_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_json(&self) -> Json {
        Json::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_json(v: &Json) -> Result<Self, DeError> {
        v.as_f64()
            .ok_or_else(|| DeError::new(format!("expected number, got {v:?}")))
    }
}

impl Serialize for f32 {
    fn to_json(&self) -> Json {
        Json::F64(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_json(v: &Json) -> Result<Self, DeError> {
        f64::from_json(v).map(|f| f as f32)
    }
}

impl Serialize for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_json(v: &Json) -> Result<Self, DeError> {
        match v {
            Json::Bool(b) => Ok(*b),
            other => Err(DeError::new(format!("expected bool, got {other:?}"))),
        }
    }
}

impl Serialize for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_json(v: &Json) -> Result<Self, DeError> {
        match v {
            Json::Str(s) => Ok(s.clone()),
            other => Err(DeError::new(format!("expected string, got {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_json(&self) -> Json {
        Json::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_json(&self) -> Json {
        Json::Str(self.to_string())
    }
}

// ------------------------------------------------------------- containers

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_json(&self) -> Json {
        (**self).to_json()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_json(&self) -> Json {
        (**self).to_json()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_json(v: &Json) -> Result<Self, DeError> {
        T::from_json(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(v) => v.to_json(),
            None => Json::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_json(v: &Json) -> Result<Self, DeError> {
        match v {
            Json::Null => Ok(None),
            other => T::from_json(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(Serialize::to_json).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(Serialize::to_json).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_json(v: &Json) -> Result<Self, DeError> {
        match v {
            Json::Arr(items) => items.iter().map(T::from_json).collect(),
            other => Err(DeError::new(format!("expected array, got {other:?}"))),
        }
    }
}

macro_rules! impl_ser_tuple {
    ($(($($n:tt $t:ident),+))+) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_json(&self) -> Json {
                Json::Arr(vec![$(self.$n.to_json()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_json(v: &Json) -> Result<Self, DeError> {
                match v {
                    Json::Arr(items) => {
                        let mut it = items.iter();
                        let out = ($({
                            let _ = $n; // positional marker
                            $t::from_json(it.next().ok_or_else(|| {
                                DeError::new("tuple too short")
                            })?)?
                        },)+);
                        Ok(out)
                    }
                    other => Err(DeError::new(format!("expected array, got {other:?}"))),
                }
            }
        }
    )+};
}
impl_ser_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

impl<K: ToString + Ord, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn to_json(&self) -> Json {
        Json::Obj(
            self.iter()
                .map(|(k, v)| (k.to_string(), v.to_json()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for std::collections::BTreeMap<String, V> {
    fn from_json(v: &Json) -> Result<Self, DeError> {
        match v {
            Json::Obj(pairs) => pairs
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_json(v)?)))
                .collect(),
            other => Err(DeError::new(format!("expected object, got {other:?}"))),
        }
    }
}

impl<K: ToString, V: Serialize, S> Serialize for std::collections::HashMap<K, V, S> {
    fn to_json(&self) -> Json {
        let mut pairs: Vec<(String, Json)> = self
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_json()))
            .collect();
        pairs.sort_by(|a, b| a.0.cmp(&b.0));
        Json::Obj(pairs)
    }
}

/// Looks up a required field in an object's pairs (derive support).
pub fn obj_field<'a>(pairs: &'a [(String, Json)], name: &str) -> Result<&'a Json, DeError> {
    pairs
        .iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v)
        .ok_or_else(|| DeError::new(format!("missing field `{name}`")))
}
