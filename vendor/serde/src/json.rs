//! The in-memory JSON tree shared by the `serde` and `serde_json`
//! stand-ins.

/// A JSON value. Object keys keep insertion order (derive order), which
/// keeps rendered output stable across runs.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Unsigned integer (kept exact; JSON number on output).
    U64(u64),
    /// Signed integer (kept exact; JSON number on output).
    I64(i64),
    /// Floating-point number. Non-finite values render as `null`.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object as ordered key/value pairs.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Numeric view widened to `f64` (accepts any number variant).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::F64(f) => Some(*f),
            Json::I64(i) => Some(*i as f64),
            Json::U64(u) => Some(*u as f64),
            _ => None,
        }
    }

    /// Unsigned view (accepts exact integers and integral floats).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::U64(u) => Some(*u),
            Json::I64(i) => u64::try_from(*i).ok(),
            Json::F64(f) if f.fract() == 0.0 && *f >= 0.0 && *f <= u64::MAX as f64 => {
                Some(*f as u64)
            }
            _ => None,
        }
    }

    /// Signed view (accepts exact integers and integral floats).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::I64(i) => Some(*i),
            Json::U64(u) => i64::try_from(*u).ok(),
            Json::F64(f) if f.fract() == 0.0 && *f >= i64::MIN as f64 && *f <= i64::MAX as f64 => {
                Some(*f as i64)
            }
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Array view.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Object view (ordered pairs).
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(v) => Some(v),
            _ => None,
        }
    }
}

/// Escapes a string into a JSON string literal (including quotes).
pub fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}
