//! Offline stand-in for the `serde_json` crate.
//!
//! Renders the `serde` stand-in's JSON tree to text and parses text back
//! into it. Supports `to_string`, `to_string_pretty`, and `from_str` —
//! the surface this workspace uses.

use serde::json::{escape_into, Json};
use serde::{DeError, Deserialize, Serialize};

mod parse;

pub use serde::json::Json as Value;

/// Serialization/deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(pub String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Error {
        Error(e.0)
    }
}

/// Serializes `value` as compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.to_json(), &mut out, None, 0);
    Ok(out)
}

/// Serializes `value` as two-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.to_json(), &mut out, Some(2), 0);
    Ok(out)
}

/// Parses JSON text into `T`.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let tree = parse::parse(s).map_err(Error)?;
    T::from_json(&tree).map_err(Error::from)
}

/// Renders one value; `indent = None` is compact, `Some(n)` pretty-prints
/// with `n`-space steps.
fn render(v: &Json, out: &mut String, indent: Option<usize>, depth: usize) {
    match v {
        Json::Null => out.push_str("null"),
        Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Json::U64(u) => {
            out.push_str(&u.to_string());
        }
        Json::I64(i) => {
            out.push_str(&i.to_string());
        }
        Json::F64(f) => {
            if f.is_finite() {
                // `{}` gives the shortest round-trippable repr; force a
                // decimal point so integral floats stay floats on re-read
                // by readers that distinguish (harmless for ours).
                let s = format!("{f}");
                out.push_str(&s);
                if !s.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                out.push_str("null");
            }
        }
        Json::Str(s) => escape_into(out, s),
        Json::Arr(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                render(item, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Json::Obj(pairs) => {
            if pairs.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                escape_into(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                render(item, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(step) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(step * depth));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(to_string(&-3i32).unwrap(), "-3");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(to_string("a\"b").unwrap(), "\"a\\\"b\"");
        let v: Vec<u32> = from_str("[1, 2, 3]").unwrap();
        assert_eq!(v, vec![1, 2, 3]);
        let f: f64 = from_str("-1.25e2").unwrap();
        assert_eq!(f, -125.0);
    }

    #[test]
    fn nested_round_trip() {
        let v: Vec<(String, Option<u64>)> = from_str(r#"[["a", 1], ["b", null]]"#).unwrap();
        assert_eq!(v, vec![("a".into(), Some(1)), ("b".into(), None)]);
        let s = to_string(&v).unwrap();
        let back: Vec<(String, Option<u64>)> = from_str(&s).unwrap();
        assert_eq!(back, v);
    }
}
