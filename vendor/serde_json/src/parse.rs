//! Recursive-descent JSON parser producing the serde stand-in's tree.

use serde::json::Json;

/// Parses a complete JSON document (trailing whitespace allowed).
pub fn parse(s: &str) -> Result<Json, String> {
    let bytes = s.as_bytes();
    let mut pos = 0;
    let v = value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing characters at byte {pos}"));
    }
    Ok(v)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'n') => literal(b, pos, "null", Json::Null),
        Some(b't') => literal(b, pos, "true", Json::Bool(true)),
        Some(b'f') => literal(b, pos, "false", Json::Bool(false)),
        Some(b'"') => string(b, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}")),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut pairs = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(pairs));
            }
            loop {
                skip_ws(b, pos);
                let key = string(b, pos)?;
                skip_ws(b, pos);
                if b.get(*pos) != Some(&b':') {
                    return Err(format!("expected ':' at byte {pos}"));
                }
                *pos += 1;
                let v = value(b, pos)?;
                pairs.push((key, v));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(pairs));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
                }
            }
        }
        Some(_) => number(b, pos),
    }
}

fn literal(b: &[u8], pos: &mut usize, lit: &str, v: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(format!("invalid literal at byte {pos}"))
    }
}

fn string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    if b.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}"));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b.get(*pos + 1..*pos + 5).ok_or("truncated \\u escape")?;
                        let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                        let cp = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                        // Surrogate pairs are not reassembled; the
                        // workspace never emits them.
                        out.push(char::from_u32(cp).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar.
                let rest = std::str::from_utf8(&b[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn number(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-') {
        *pos += 1;
    }
    let text = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
    if text.is_empty() {
        return Err(format!("expected value at byte {start}"));
    }
    if !text.contains(['.', 'e', 'E']) {
        if let Ok(u) = text.parse::<u64>() {
            return Ok(Json::U64(u));
        }
        if let Ok(i) = text.parse::<i64>() {
            return Ok(Json::I64(i));
        }
    }
    text.parse::<f64>()
        .map(Json::F64)
        .map_err(|_| format!("invalid number `{text}` at byte {start}"))
}
