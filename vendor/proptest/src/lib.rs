//! Offline stand-in for the `proptest` crate.
//!
//! Implements the macro/API surface this workspace's property tests use:
//! the [`proptest!`] macro, [`Strategy`] with `prop_map`, range and tuple
//! strategies, `prop::collection::vec`, [`prop_oneof!`], [`any`], and the
//! `prop_assert*` macros. Cases are generated from a per-test
//! deterministic seed (overridable with `PROPTEST_SEED`). **No
//! shrinking**: a failure reports its case number and generated inputs
//! instead of a minimized example.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Runner configuration (subset of the real `ProptestConfig`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Explicit test-case failure (subset of the real `TestCaseError`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// The property failed with the given message.
    Fail(String),
    /// The generated case was rejected (counts as skipped, not failed).
    Reject(String),
}

impl TestCaseError {
    /// A failure with the given reason.
    pub fn fail(reason: impl Into<String>) -> TestCaseError {
        TestCaseError::Fail(reason.into())
    }

    /// A rejection with the given reason.
    pub fn reject(reason: impl Into<String>) -> TestCaseError {
        TestCaseError::Reject(reason.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(r) => write!(f, "test case failed: {r}"),
            TestCaseError::Reject(r) => write!(f, "test case rejected: {r}"),
        }
    }
}

/// The RNG handed to strategies.
pub struct TestRng(ChaCha8Rng);

impl TestRng {
    /// Deterministic per-test generator; `PROPTEST_SEED` overrides the
    /// base seed for reproduction.
    pub fn deterministic(test_name: &str) -> TestRng {
        let base = std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|s| s.parse::<u64>().ok())
            .unwrap_or(0x0fc0_ffee);
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng(ChaCha8Rng::seed_from_u64(base ^ h))
    }

    /// The underlying generator.
    pub fn rng(&mut self) -> &mut ChaCha8Rng {
        &mut self.0
    }
}

/// A generator of random values (no shrinking in the stand-in).
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erases this strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(move |rng| self.generate(rng)))
    }
}

/// Type-erased strategy.
pub struct BoxedStrategy<V>(Box<dyn Fn(&mut TestRng) -> V>);

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        (self.0)(rng)
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng().gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng().gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($n:tt $s:ident),+))+) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.generate(rng),)+)
            }
        }
    )+};
}
impl_tuple_strategy! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// The canonical strategy.
    fn arbitrary() -> BoxedStrategy<Self>;
}

impl Arbitrary for bool {
    fn arbitrary() -> BoxedStrategy<bool> {
        BoxedStrategy(Box::new(|rng| rng.rng().gen()))
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary() -> BoxedStrategy<$t> {
                BoxedStrategy(Box::new(|rng| rng.rng().gen()))
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64, f32);

/// The canonical strategy for `T` (subset of the real `any`).
pub fn any<T: Arbitrary>() -> BoxedStrategy<T> {
    T::arbitrary()
}

/// Sub-modules mirroring `proptest::prop`.
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Strategy for vectors with random length in `len`.
    pub struct VecStrategy<S> {
        elem: S,
        len: std::ops::Range<usize>,
    }

    /// A vector of `elem` values with length drawn from `len`.
    pub fn vec<S: Strategy>(elem: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.rng().gen_range(self.len.clone());
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// Mirrors `proptest::prelude::prop`.
pub mod prop {
    pub use crate::collection;
}

/// Uniform choice among boxed strategies (built by [`prop_oneof!`]).
pub struct Union<V> {
    arms: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// A union over `arms` (must be non-empty).
    pub fn new(arms: Vec<BoxedStrategy<V>>) -> Union<V> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.rng().gen_range(0..self.arms.len());
        self.arms[i].generate(rng)
    }
}

/// Commonly imported names, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError,
    };
}

/// Uniformly picks one of several strategies with the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

/// Asserts a condition inside a property (panics with context).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*)
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*)
    };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_ne!($a, $b, $($fmt)*)
    };
}

/// Declares property tests: generates inputs per case and runs the body.
///
/// Grammar (subset of the real macro):
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn prop(xs in some_strategy(), y in 0..10u32) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = ($cfg:expr); $($(#[$attr:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$attr])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::TestRng::deterministic(stringify!($name));
                for __case in 0..config.cases {
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                    let __ctx = format!(
                        concat!("[", stringify!($name), " case {}/{}] inputs: ", $(concat!(stringify!($arg), " = {:?} ")),+),
                        __case + 1, config.cases, $(&$arg),+
                    );
                    let __result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        let __run = || -> ::std::result::Result<(), $crate::TestCaseError> {
                            $body
                            Ok(())
                        };
                        __run()
                    }));
                    match __result {
                        Err(e) => {
                            eprintln!("proptest failure {__ctx}");
                            std::panic::resume_unwind(e);
                        }
                        Ok(Err($crate::TestCaseError::Fail(reason))) => {
                            panic!("proptest failure {__ctx}: {reason}");
                        }
                        Ok(Err($crate::TestCaseError::Reject(_))) | Ok(Ok(())) => {}
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_vecs(xs in prop::collection::vec(0..100u32, 1..20), y in 0.0f64..1.0) {
            prop_assert!(!xs.is_empty() && xs.len() < 20);
            prop_assert!(xs.iter().all(|&x| x < 100));
            prop_assert!((0.0..1.0).contains(&y));
        }

        #[test]
        fn oneof_and_map(v in prop_oneof![
            (0..10u32).prop_map(|x| x as u64),
            (100..110u32).prop_map(|x| x as u64),
        ]) {
            prop_assert!(v < 10 || (100..110).contains(&v));
        }
    }

    #[test]
    fn macro_expansion_runs() {
        ranges_and_vecs();
        oneof_and_map();
    }
}
