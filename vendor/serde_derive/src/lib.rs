//! Offline stand-in for `serde_derive`.
//!
//! Hand-rolled `#[derive(Serialize)]` / `#[derive(Deserialize)]` without
//! `syn`/`quote`: the item's token stream is walked directly and the impl
//! is rendered as a string. Supports the shapes this workspace uses:
//!
//! * structs with named fields (any visibility),
//! * enums with unit, newtype, tuple, and struct variants,
//! * no generic parameters, no `#[serde(...)]` attributes.
//!
//! The generated representation matches real serde's externally-tagged
//! default: structs → objects, unit variants → strings, data variants →
//! single-key objects.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Parsed shape of the deriving item.
enum Item {
    Struct {
        name: String,
        fields: Vec<String>,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// One enum variant.
struct Variant {
    name: String,
    shape: Shape,
}

/// The data shape of a variant.
enum Shape {
    Unit,
    /// `(T0, …, Tn-1)` with the field count.
    Tuple(usize),
    /// `{ a, b, … }` with the field names.
    Struct(Vec<String>),
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match &item {
        Item::Struct { name, fields } => {
            let pairs: Vec<String> = fields
                .iter()
                .map(|f| format!("(\"{f}\".to_string(), serde::Serialize::to_json(&self.{f}))"))
                .collect();
            format!(
                "impl serde::Serialize for {name} {{\n\
                   fn to_json(&self) -> serde::json::Json {{\n\
                     serde::json::Json::Obj(vec![{}])\n\
                   }}\n\
                 }}",
                pairs.join(", ")
            )
        }
        Item::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.shape {
                        Shape::Unit => format!(
                            "{name}::{vn} => serde::json::Json::Str(\"{vn}\".to_string()),"
                        ),
                        Shape::Tuple(1) => format!(
                            "{name}::{vn}(f0) => serde::json::Json::Obj(vec![(\"{vn}\".to_string(), serde::Serialize::to_json(f0))]),"
                        ),
                        Shape::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("serde::Serialize::to_json({b})"))
                                .collect();
                            format!(
                                "{name}::{vn}({}) => serde::json::Json::Obj(vec![(\"{vn}\".to_string(), serde::json::Json::Arr(vec![{}]))]),",
                                binds.join(", "),
                                items.join(", ")
                            )
                        }
                        Shape::Struct(fields) => {
                            let pairs: Vec<String> = fields
                                .iter()
                                .map(|f| format!("(\"{f}\".to_string(), serde::Serialize::to_json({f}))"))
                                .collect();
                            format!(
                                "{name}::{vn} {{ {} }} => serde::json::Json::Obj(vec![(\"{vn}\".to_string(), serde::json::Json::Obj(vec![{}]))]),",
                                fields.join(", "),
                                pairs.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!(
                "impl serde::Serialize for {name} {{\n\
                   fn to_json(&self) -> serde::json::Json {{\n\
                     match self {{\n{}\n}}\n\
                   }}\n\
                 }}",
                arms.join("\n")
            )
        }
    };
    code.parse().expect("derived Serialize impl parses")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match &item {
        Item::Struct { name, fields } => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: serde::Deserialize::from_json(serde::obj_field(pairs, \"{f}\")?)?"
                    )
                })
                .collect();
            format!(
                "impl serde::Deserialize for {name} {{\n\
                   fn from_json(v: &serde::json::Json) -> Result<Self, serde::DeError> {{\n\
                     let pairs = v.as_obj().ok_or_else(|| serde::DeError::new(\"expected object for {name}\"))?;\n\
                     Ok({name} {{ {} }})\n\
                   }}\n\
                 }}",
                inits.join(", ")
            )
        }
        Item::Enum { name, variants } => {
            let mut unit_arms = String::new();
            let mut tagged_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.shape {
                    Shape::Unit => {
                        unit_arms.push_str(&format!(
                            "serde::json::Json::Str(s) if s == \"{vn}\" => return Ok({name}::{vn}),\n"
                        ));
                    }
                    Shape::Tuple(1) => {
                        tagged_arms.push_str(&format!(
                            "\"{vn}\" => return Ok({name}::{vn}(serde::Deserialize::from_json(inner)?)),\n"
                        ));
                    }
                    Shape::Tuple(n) => {
                        let gets: Vec<String> = (0..*n)
                            .map(|i| format!(
                                "serde::Deserialize::from_json(arr.get({i}).ok_or_else(|| serde::DeError::new(\"tuple variant too short\"))?)?"
                            ))
                            .collect();
                        tagged_arms.push_str(&format!(
                            "\"{vn}\" => {{\n\
                               let arr = inner.as_arr().ok_or_else(|| serde::DeError::new(\"expected array for {name}::{vn}\"))?;\n\
                               return Ok({name}::{vn}({}));\n\
                             }}\n",
                            gets.join(", ")
                        ));
                    }
                    Shape::Struct(fields) => {
                        let inits: Vec<String> = fields
                            .iter()
                            .map(|f| format!(
                                "{f}: serde::Deserialize::from_json(serde::obj_field(pairs, \"{f}\")?)?"
                            ))
                            .collect();
                        tagged_arms.push_str(&format!(
                            "\"{vn}\" => {{\n\
                               let pairs = inner.as_obj().ok_or_else(|| serde::DeError::new(\"expected object for {name}::{vn}\"))?;\n\
                               return Ok({name}::{vn} {{ {} }});\n\
                             }}\n",
                            inits.join(", ")
                        ));
                    }
                }
            }
            format!(
                "impl serde::Deserialize for {name} {{\n\
                   fn from_json(v: &serde::json::Json) -> Result<Self, serde::DeError> {{\n\
                     match v {{\n\
                       {unit_arms}\n\
                       serde::json::Json::Obj(pairs) if pairs.len() == 1 => {{\n\
                         let (tag, inner) = (&pairs[0].0, &pairs[0].1);\n\
                         let _ = inner;\n\
                         match tag.as_str() {{\n\
                           {tagged_arms}\n\
                           other => return Err(serde::DeError::new(format!(\"unknown variant `{{other}}` of {name}\"))),\n\
                         }}\n\
                       }}\n\
                       _ => {{}}\n\
                     }}\n\
                     Err(serde::DeError::new(format!(\"invalid value for {name}: {{v:?}}\")))\n\
                   }}\n\
                 }}",
            )
        }
    };
    code.parse().expect("derived Deserialize impl parses")
}

// ------------------------------------------------------------------ parse

/// Walks the item tokens into an [`Item`].
fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&tokens, &mut i);
    let kw = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected `struct` or `enum`, found {other}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected item name, found {other}"),
    };
    i += 1;
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("derive stand-in does not support generic types (deriving {name})");
    }
    let body = loop {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break g.stream(),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                panic!("derive stand-in does not support tuple structs (deriving {name})")
            }
            Some(_) => i += 1,
            None => panic!("no body found deriving {name}"),
        }
    };
    match kw.as_str() {
        "struct" => Item::Struct {
            name,
            fields: parse_named_fields(body),
        },
        "enum" => Item::Enum {
            name,
            variants: parse_variants(body),
        },
        other => panic!("cannot derive for `{other}` items"),
    }
}

/// Skips attributes (`#[...]`, doc comments included) and visibility
/// (`pub`, `pub(...)`).
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 2; // '#' + bracket group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1;
                }
            }
            _ => break,
        }
    }
}

/// Parses `name: Type, …` field lists, returning the names.
fn parse_named_fields(body: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        let Some(TokenTree::Ident(id)) = tokens.get(i) else {
            break;
        };
        fields.push(id.to_string());
        i += 1;
        // Skip `: Type` until a comma at angle-bracket depth 0. Parens,
        // brackets, and braces are single group tokens, so only `<...>`
        // nesting needs explicit tracking.
        let mut angle = 0i32;
        while let Some(t) = tokens.get(i) {
            if let TokenTree::Punct(p) = t {
                match p.as_char() {
                    '<' => angle += 1,
                    '>' => angle -= 1,
                    ',' if angle == 0 => {
                        i += 1;
                        break;
                    }
                    _ => {}
                }
            }
            i += 1;
        }
    }
    fields
}

/// Parses enum variants.
fn parse_variants(body: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        let Some(TokenTree::Ident(id)) = tokens.get(i) else {
            break;
        };
        let name = id.to_string();
        i += 1;
        let shape = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                Shape::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Shape::Struct(parse_named_fields(g.stream()))
            }
            _ => Shape::Unit,
        };
        variants.push(Variant { name, shape });
        // Skip to past the next top-level comma (also skips `= discr`).
        while let Some(t) = tokens.get(i) {
            i += 1;
            if matches!(t, TokenTree::Punct(p) if p.as_char() == ',') {
                break;
            }
        }
    }
    variants
}

/// Counts comma-separated fields of a tuple variant at angle depth 0.
fn count_tuple_fields(body: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut angle = 0i32;
    let mut saw_trailing_comma = false;
    for t in &tokens {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 => {
                    count += 1;
                    saw_trailing_comma = true;
                    continue;
                }
                _ => {}
            }
        }
        saw_trailing_comma = false;
    }
    if saw_trailing_comma {
        count -= 1;
    }
    count
}
