//! Offline stand-in for the `rand_chacha` crate.
//!
//! Provides deterministic seeded generators under the ChaCha type names.
//! The simulation only needs determinism per seed, not the actual ChaCha
//! stream, so the core is xoshiro256** (small, fast, and high quality)
//! seeded from the 32-byte ChaCha-shaped seed.

pub use rand::{RngCore, SeedableRng};

/// Re-export module mirroring `rand_chacha::rand_core`.
pub mod rand_core {
    pub use rand::{RngCore, SeedableRng};
}

macro_rules! chacha_like {
    ($name:ident) => {
        /// Deterministic seeded generator (xoshiro256** core) under the
        /// corresponding ChaCha name.
        #[derive(Debug, Clone, PartialEq, Eq)]
        pub struct $name {
            s: [u64; 4],
        }

        impl rand::SeedableRng for $name {
            type Seed = [u8; 32];

            fn from_seed(seed: [u8; 32]) -> $name {
                let mut s = [0u64; 4];
                for (i, chunk) in seed.chunks(8).enumerate() {
                    let mut b = [0u8; 8];
                    b.copy_from_slice(chunk);
                    s[i] = u64::from_le_bytes(b);
                }
                // xoshiro must not start from the all-zero state.
                if s == [0; 4] {
                    s = [
                        0x9E37_79B9_7F4A_7C15,
                        0xBF58_476D_1CE4_E5B9,
                        0x94D0_49BB_1331_11EB,
                        0x2545_F491_4F6C_DD1D,
                    ];
                }
                $name { s }
            }
        }

        impl rand::RngCore for $name {
            fn next_u64(&mut self) -> u64 {
                let s = &mut self.s;
                let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
                let t = s[1] << 17;
                s[2] ^= s[0];
                s[3] ^= s[1];
                s[1] ^= s[2];
                s[0] ^= s[3];
                s[2] ^= t;
                s[3] = s[3].rotate_left(45);
                result
            }
        }
    };
}

chacha_like!(ChaCha8Rng);
chacha_like!(ChaCha12Rng);
chacha_like!(ChaCha20Rng);

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        let mut c = ChaCha8Rng::seed_from_u64(43);
        let va: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.gen()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }
}
