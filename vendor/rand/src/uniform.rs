//! Uniform range sampling for [`crate::Rng::gen_range`].
//!
//! Mirrors real rand's structure: `SampleRange` is blanket-implemented
//! over [`SampleUniform`] element types, which lets integer/float literal
//! inference flow from the use site into the range (e.g.
//! `slice.get(rng.gen_range(0..3))` infers `usize`).

use crate::RngCore;
use std::ops::{Range, RangeInclusive};

/// Element types that support uniform sampling.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform sample in `[lo, hi)` (`inclusive = false`) or `[lo, hi]`.
    fn sample_between<R: RngCore + ?Sized>(
        rng: &mut R,
        lo: Self,
        hi: Self,
        inclusive: bool,
    ) -> Self;
}

/// A range that can produce uniform samples of `T`.
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_between(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "cannot sample empty range");
        T::sample_between(rng, lo, hi, true)
    }
}

/// Rejection-free bounded `u64` via 128-bit multiply (Lemire).
fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    ((u128::from(rng.next_u64()) * u128::from(bound)) >> 64) as u64
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                let span = (hi as i128 - lo as i128) as u128 + u128::from(inclusive);
                if span == 0 || span > u128::from(u64::MAX) {
                    // Empty guard handled by caller; full-width range:
                    // every u64 pattern is valid.
                    return rng.next_u64() as $t;
                }
                let off = bounded_u64(rng, span as u64);
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}
impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                _inclusive: bool,
            ) -> Self {
                let unit: f64 = crate::Standard::from_rng(rng);
                lo + (hi - lo) * unit as $t
            }
        }
    )*};
}
impl_uniform_float!(f32, f64);
