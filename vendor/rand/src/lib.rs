//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access, so the workspace vendors
//! the small slice of `rand`'s API it uses: the [`Rng`] extension trait
//! (`gen`, `gen_range`, `gen_bool`), [`SeedableRng`], uniform range
//! sampling over the primitive types, and [`seq::SliceRandom`].
//!
//! Generators here are deterministic per seed (that is the property the
//! simulation relies on) but are **not** the upstream algorithms; streams
//! differ from the real `rand`/`rand_chacha` output.

/// Low-level generator interface: a source of uniform `u64`s.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let v = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A generator that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Raw seed type (32 bytes, mirroring ChaCha).
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64` convenience seed.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        // SplitMix64 expansion, the standard way to widen a 64-bit seed.
        let mut x = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let b = z.to_le_bytes();
            chunk.copy_from_slice(&b[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

mod uniform;
pub use uniform::SampleRange;

/// User-facing extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// A uniformly random value of `T` over its natural domain
    /// (`f64`/`f32` in `[0, 1)`, integers over the full range, `bool`
    /// fair).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_rng(self)
    }

    /// A uniform sample from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        Self: Sized,
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= p <= 1`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "p={p} outside [0,1]");
        f64::from_rng(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Types with a natural uniform distribution for [`Rng::gen`].
pub trait Standard {
    /// Draws one value.
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> u128 {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

/// Sequence helpers (subset of `rand::seq`).
pub mod seq {
    use super::{Rng, RngCore};

    /// Extension methods on slices (subset of the real `SliceRandom`).
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` if empty.
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

/// Commonly imported names (subset of `rand::prelude`).
pub mod prelude {
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Lcg(u64);
    impl RngCore for Lcg {
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1);
            self.0
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = Lcg(7);
        for _ in 0..1000 {
            let v = r.gen_range(3..17u32);
            assert!((3..17).contains(&v));
            let f = r.gen_range(-2.0..4.0f64);
            assert!((-2.0..4.0).contains(&f));
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        use seq::SliceRandom;
        let mut v: Vec<u32> = (0..50).collect();
        let mut r = Lcg(9);
        v.shuffle(&mut r);
        let mut s = v.clone();
        s.sort_unstable();
        assert_eq!(s, (0..50).collect::<Vec<_>>());
    }
}
