//! Offline stand-in for the `bytes` crate.
//!
//! The build environment has no network access, so the workspace vendors
//! a minimal, API-compatible subset of `bytes`: an immutable, cheaply
//! cloneable byte buffer backed by `Arc<[u8]>`. Only the surface the OFC
//! workspace actually uses is provided.

use std::borrow::Borrow;
use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// A cheaply cloneable, immutable chunk of contiguous memory.
///
/// Clones share the underlying allocation; `slice` produces zero-copy
/// views by tracking an offset/length window into the shared buffer.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    len: usize,
}

impl Bytes {
    /// An empty buffer (no allocation).
    pub fn new() -> Bytes {
        Bytes::default()
    }

    /// Wraps a static slice without copying.
    pub fn from_static(bytes: &'static [u8]) -> Bytes {
        Bytes::from(bytes.to_vec())
    }

    /// Copies `data` into a fresh buffer.
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes::from(data.to_vec())
    }

    /// Length of this view in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// A zero-copy sub-view of this buffer.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn slice(&self, range: impl std::ops::RangeBounds<usize>) -> Bytes {
        use std::ops::Bound;
        let start = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len,
        };
        assert!(start <= end && end <= self.len, "slice out of bounds");
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + start,
            len: end - start,
        }
    }

    /// The bytes of this view.
    #[allow(clippy::should_implement_trait)]
    pub fn as_ref(&self) -> &[u8] {
        &self.data[self.start..self.start + self.len]
    }

    /// Copies the view into an owned vector.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_ref().to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_ref()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        Bytes::as_ref(self)
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self.as_ref()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        let len = v.len();
        Bytes {
            data: v.into(),
            start: 0,
            len,
        }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(v: &'static [u8]) -> Bytes {
        Bytes::from(v.to_vec())
    }
}

impl From<&'static str> for Bytes {
    fn from(v: &'static str) -> Bytes {
        Bytes::from(v.as_bytes().to_vec())
    }
}

impl From<String> for Bytes {
    fn from(v: String) -> Bytes {
        Bytes::from(v.into_bytes())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_ref() == other.as_ref()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_ref() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_ref() == *other
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_ref().hash(state);
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let b = self.as_ref();
        if b.len() <= 16 {
            write!(f, "b{b:?}")
        } else {
            write!(f, "Bytes(len={}, head={:?}...)", b.len(), &b[..16])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_and_slice() {
        let b = Bytes::copy_from_slice(b"hello world");
        assert_eq!(b.len(), 11);
        let s = b.slice(6..);
        assert_eq!(s.as_ref(), b"world");
        let c = b.clone();
        assert_eq!(c, b);
    }
}
