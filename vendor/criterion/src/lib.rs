//! Offline stand-in for the `criterion` crate.
//!
//! Implements the macro/API surface the workspace's benches use —
//! `criterion_group!`/`criterion_main!`, benchmark groups, `iter`,
//! `iter_batched`, `BenchmarkId` — over a simple wall-clock measurement
//! loop (fixed warm-up, then timed samples, median-of-samples report).
//! No plotting, no statistics beyond median/min/max, no baselines.

use std::time::{Duration, Instant};

/// Opaque hint preventing the optimizer from deleting a value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How `iter_batched` amortizes setup cost (ignored by the stand-in).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `<function_name>/<parameter>` identifier.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Identifier from a bare parameter.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Top-level harness state.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _parent: std::marker::PhantomData,
        }
    }

    /// Runs a single benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark("", &id.into().id, self.sample_size, f);
        self
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: std::marker::PhantomData<&'a mut Criterion>,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Ignored (accepted for API compatibility).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&self.name, &id.into().id, self.sample_size, f);
        self
    }

    /// Runs one parameterized benchmark in this group.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_benchmark(&self.name, &id.into().id, self.sample_size, |b| f(b, input));
        self
    }

    /// Ends the group (no-op; reports print as benchmarks run).
    pub fn finish(self) {}
}

/// Measurement driver handed to benchmark closures.
pub struct Bencher {
    /// Nanoseconds of routine time accumulated for the current sample.
    elapsed: Duration,
    /// Iterations the routine ran for the current sample.
    iters: u64,
}

impl Bencher {
    /// Times `routine` back-to-back.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` over fresh inputs produced (untimed) by `setup`.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }

    /// Like `iter_batched`, with the routine borrowing the input.
    pub fn iter_batched_ref<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(&mut I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let mut input = setup();
            let start = Instant::now();
            black_box(routine(&mut input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

/// Calibrates an iteration count, then takes `samples` timed samples and
/// prints the median per-iteration time.
fn run_benchmark<F: FnMut(&mut Bencher)>(group: &str, id: &str, samples: usize, mut f: F) {
    let full = if group.is_empty() {
        id.to_string()
    } else {
        format!("{group}/{id}")
    };

    // Calibration: grow iters until one sample costs ≥ ~2ms (capped).
    let mut iters = 1u64;
    loop {
        let mut b = Bencher {
            elapsed: Duration::ZERO,
            iters,
        };
        f(&mut b);
        if b.elapsed >= Duration::from_millis(2) || iters >= 1 << 20 {
            break;
        }
        iters = iters.saturating_mul(4).max(1);
    }

    let mut per_iter: Vec<f64> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let mut b = Bencher {
            elapsed: Duration::ZERO,
            iters,
        };
        f(&mut b);
        per_iter.push(b.elapsed.as_secs_f64() / iters as f64);
    }
    per_iter.sort_by(|a, b| a.total_cmp(b));
    let median = per_iter[per_iter.len() / 2];
    let min = per_iter[0];
    let max = per_iter[per_iter.len() - 1];
    println!(
        "{full:<50} time: [{} {} {}]",
        fmt_ns(min),
        fmt_ns(median),
        fmt_ns(max)
    );
}

/// Formats seconds with criterion-style adaptive units.
fn fmt_ns(secs: f64) -> String {
    let ns = secs * 1e9;
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.2} s", ns / 1e9)
    }
}

/// Declares a benchmark group runner, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares `main` running the given groups, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
