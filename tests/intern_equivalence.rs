//! Interning equivalence tier (ISSUE 9 / DESIGN.md §17).
//!
//! The raw-speed campaign replaced the cache plane's string keys with
//! interned [`ofc::rcstore::Key`] handles (`Istr`). This tier pins the
//! refactor's one obligation: **no observable behavior may depend on the
//! interner's id values**, which are assigned in racy first-touch order.
//!
//! Every random schedule of writes, reads, evictions, crashes, restarts,
//! and network partitions is driven twice — through two independently
//! constructed clusters — while a **string-keyed reference model** (a
//! `BTreeMap<String, _>` that never touches an `Istr`) tracks acknowledged
//! state. After every op:
//!
//! * the twin clusters must agree on every observable — lengths, byte
//!   accounting, per-key version/dirty/master placement, loss counters,
//!   and the full eviction-victim list;
//! * the string-keyed model must agree with the cluster on presence and
//!   size of every acknowledged object, and eviction victims must come
//!   out **sorted by resolved string** (the `Ord` the eviction sweep
//!   promises), never by interner id.
//!
//! Shrunken failures worth keeping are pinned as named replays in
//! `regressions` below, so they survive independent of the proptest RNG.

use ofc::rcstore::cluster::Cluster;
use ofc::rcstore::{ClusterConfig, Key, RcError, Value as RcValue};
use ofc::simtime::SimTime;
use proptest::prelude::*;
use std::collections::BTreeMap;

const MB: u64 = 1 << 20;

/// Random operations over a small key universe. Key strings carry a
/// tenant-style `t<i>/obj<k>` shape so the interner's composed-key paths
/// get real traffic, and several keys share each prefix.
#[derive(Debug, Clone)]
enum Op {
    Write {
        key: u8,
        size_kb: u16,
        node: u8,
        dirty: bool,
    },
    Read {
        key: u8,
        node: u8,
    },
    MarkClean {
        key: u8,
    },
    Evict {
        key: u8,
    },
    /// Probe the eviction sweep's victim inventory on both twins.
    Sweep,
    Crash {
        node: u8,
    },
    Restart {
        node: u8,
    },
    /// Split the 4 nodes into {even} vs {odd} or {0} vs {rest}.
    Partition {
        lonely: bool,
    },
    Heal,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..20u8, 1..2048u16, 0..4u8, any::<bool>()).prop_map(|(key, size_kb, node, dirty)| {
            Op::Write {
                key,
                size_kb,
                node,
                dirty,
            }
        }),
        (0..20u8, 1..2048u16, 0..4u8, any::<bool>()).prop_map(|(key, size_kb, node, dirty)| {
            Op::Write {
                key,
                size_kb,
                node,
                dirty,
            }
        }),
        (0..20u8, 0..4u8).prop_map(|(key, node)| Op::Read { key, node }),
        (0..20u8).prop_map(|key| Op::MarkClean { key }),
        (0..20u8).prop_map(|key| Op::Evict { key }),
        Just(Op::Sweep),
        (0..4u8).prop_map(|node| Op::Crash { node }),
        (0..4u8).prop_map(|node| Op::Restart { node }),
        any::<bool>().prop_map(|lonely| Op::Partition { lonely }),
        Just(Op::Heal),
    ]
}

fn key_string(k: u8) -> String {
    format!("t{}/obj{k}", k % 3)
}

fn fresh_cluster() -> Cluster {
    Cluster::new(ClusterConfig {
        nodes: 4,
        replication_factor: 2,
        node_pool_bytes: 64 * MB,
        max_object_bytes: 4 * MB,
        segment_bytes: 8 * MB,
        ..ClusterConfig::default()
    })
}

/// The string-keyed reference: latest acknowledged size per key. It is
/// deliberately keyed by `String` — if any cluster observable leaked
/// interner-id order, it could not stay in lockstep with this map.
type Model = BTreeMap<String, u64>;

/// Asserts the twin clusters agree on every observable and that the
/// string-keyed model's view holds on cluster `a`.
fn check_state(
    a: &Cluster,
    b: &Cluster,
    model: &mut Model,
    now: SimTime,
) -> Result<(), TestCaseError> {
    prop_assert_eq!(a.len(), b.len(), "twin len diverged");
    prop_assert_eq!(a.used_bytes(), b.used_bytes(), "twin used_bytes diverged");
    prop_assert_eq!(a.live_nodes(), b.live_nodes(), "twin live_nodes diverged");

    let mut dropped: Vec<String> = Vec::new();
    for (s, &size) in model.iter() {
        let key = Key::from(s.as_str());
        // Fault handling (recovery, fencing, expunge) may legally shed an
        // acknowledged key — durability bounds are properties.rs territory.
        // What this tier demands is lockstep: both twins shed it together.
        if !a.contains(&key) {
            prop_assert!(
                !b.contains(&key),
                "{s} dropped by one twin but retained by the other"
            );
            dropped.push(s.clone());
            continue;
        }
        prop_assert!(b.contains(&key), "{s} retained by one twin only");
        prop_assert_eq!(
            a.master_of(&key),
            b.master_of(&key),
            "master placement diverged"
        );
        prop_assert_eq!(a.version_of(&key), b.version_of(&key), "version diverged");
        prop_assert_eq!(a.is_dirty(&key), b.is_dirty(&key), "dirty flag diverged");
        // A tablet entry can outlive its master copy while a recovery is
        // parked behind a partition; peek then yields None on both twins.
        match (a.peek_value(&key), b.peek_value(&key)) {
            (Some(x), Some(y)) => {
                prop_assert_eq!(x.size(), size, "size drifted for {}", s);
                prop_assert_eq!(y.size(), size, "twin size drifted for {}", s);
            }
            (None, None) => {}
            _ => return Err(TestCaseError::fail(format!("twin peek diverged for {s}"))),
        }
    }
    for s in dropped {
        model.remove(&s);
    }

    // Full victim inventory: identical across twins, sorted by resolved
    // string (never id order), and flag-consistent with the tablet.
    let (va, _) = a.evict_candidates(now, std::time::Duration::ZERO, std::time::Duration::ZERO);
    let (vb, _) = b.evict_candidates(now, std::time::Duration::ZERO, std::time::Duration::ZERO);
    prop_assert_eq!(&va, &vb, "victim inventories diverged");
    for w in va.windows(2) {
        prop_assert!(
            w[0].0.as_str() <= w[1].0.as_str(),
            "victims not in resolved-string order: {} then {}",
            w[0].0,
            w[1].0
        );
    }
    // Victims may reference copies on crashed/fenced nodes whose tablet
    // entry or dirty flag lags (the janitor tolerates stale victims), so
    // neither residency nor the flag is asserted — the interning-relevant
    // properties are twin identity and resolved-string order, above.
    Ok(())
}

/// Drives one schedule through both twins and the reference model,
/// checking equivalence after every op. Shared by the proptest and the
/// pinned replays.
fn run_equivalence(ops: &[Op]) -> Result<(), TestCaseError> {
    let mut a = fresh_cluster();
    let mut b = fresh_cluster();
    let mut model: Model = BTreeMap::new();
    let mut now = SimTime::ZERO;

    for op in ops {
        now += std::time::Duration::from_millis(10);
        match *op {
            Op::Write {
                key,
                size_kb,
                node,
                dirty,
            } => {
                let s = key_string(key);
                let key = Key::from(s.as_str());
                let size = u64::from(size_kb) * 1024;
                let ra = a
                    .write_with_dirty(
                        usize::from(node),
                        &key,
                        RcValue::synthetic(size),
                        now,
                        dirty,
                    )
                    .result;
                let rb = b
                    .write_with_dirty(
                        usize::from(node),
                        &key,
                        RcValue::synthetic(size),
                        now,
                        dirty,
                    )
                    .result;
                prop_assert_eq!(ra.is_ok(), rb.is_ok(), "twin write outcomes diverged");
                match ra {
                    Ok(_) => {
                        model.insert(s, size);
                    }
                    Err(RcError::OutOfMemory { .. }) | Err(RcError::NodeUnavailable(_)) => {}
                    Err(e) => return Err(TestCaseError::fail(format!("write: {e}"))),
                }
            }
            Op::Read { key, node } => {
                let s = key_string(key);
                let key = Key::from(s.as_str());
                let ra = a.read(usize::from(node), &key, now).result;
                let rb = b.read(usize::from(node), &key, now).result;
                match (&ra, &rb) {
                    (Ok((va, _)), Ok((vb, _))) => {
                        prop_assert_eq!(va.size(), vb.size(), "twin read sizes diverged")
                    }
                    (Err(_), Err(_)) => {}
                    _ => return Err(TestCaseError::fail("twin read outcomes diverged")),
                }
                match (ra, model.get(&s)) {
                    (Ok((v, _)), Some(&size)) => prop_assert_eq!(v.size(), size),
                    (Ok(_), None) => {
                        return Err(TestCaseError::fail("read hit on never-acked key"))
                    }
                    (Err(_), _) => {} // partitioned/evicted-away: a miss is legal
                }
            }
            Op::MarkClean { key } => {
                let key = Key::from(key_string(key).as_str());
                let ra = a.mark_clean(&key);
                let rb = b.mark_clean(&key);
                prop_assert_eq!(ra.is_ok(), rb.is_ok(), "twin mark_clean diverged");
            }
            Op::Evict { key } => {
                let s = key_string(key);
                let key = Key::from(s.as_str());
                let ra = a.evict(&key).result;
                let rb = b.evict(&key).result;
                prop_assert_eq!(ra.is_ok(), rb.is_ok(), "twin evict outcomes diverged");
                if ra.is_ok() {
                    model.remove(&s);
                } else if a.contains(&key) {
                    // Refusal is only legal for dirty objects.
                    prop_assert_eq!(a.is_dirty(&key), Some(true));
                }
            }
            Op::Sweep => {} // the probe itself runs in check_state
            Op::Crash { node } => {
                let la = a.crash_node(usize::from(node), now).result;
                let lb = b.crash_node(usize::from(node), now).result;
                prop_assert_eq!(la, lb, "twin loss counters diverged");
                // Crashes may legitimately shed objects; the model follows
                // the cluster here (its own invariants re-apply right after).
                model.retain(|s, _| a.contains(&Key::from(s.as_str())));
            }
            Op::Restart { node } => {
                a.restart_node(usize::from(node), now);
                b.restart_node(usize::from(node), now);
            }
            Op::Partition { lonely } => {
                let groups: Vec<Vec<usize>> = if lonely {
                    vec![vec![0], vec![1, 2, 3]]
                } else {
                    vec![vec![0, 2], vec![1, 3]]
                };
                a.partition_network(&groups, now);
                b.partition_network(&groups, now);
            }
            Op::Heal => {
                a.heal_partition(now);
                b.heal_partition(now);
                // Healing expunges fenced stale copies; re-sync the model.
                model.retain(|s, _| a.contains(&Key::from(s.as_str())));
            }
        }
        check_state(&a, &b, &mut model, now)?;
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Random write/read/evict/crash/restart/partition schedules leave the
    /// interned twins and the string-keyed reference in identical
    /// observable state after every single op.
    #[test]
    fn interned_cluster_matches_string_reference(
        ops in prop::collection::vec(op_strategy(), 1..60)
    ) {
        run_equivalence(&ops)?;
    }
}

/// Pinned replays: shrunken schedules that exercised past trouble spots,
/// kept as deterministic named cases independent of the proptest RNG.
mod regressions {
    use super::*;

    /// Write under partition, heal, then crash the master: the loss
    /// counter and the post-heal tablet must agree across twins.
    #[test]
    fn partitioned_write_then_master_crash() {
        run_equivalence(&[
            Op::Partition { lonely: true },
            Op::Write {
                key: 0,
                size_kb: 64,
                node: 1,
                dirty: true,
            },
            Op::Write {
                key: 3,
                size_kb: 64,
                node: 0,
                dirty: false,
            },
            Op::Heal,
            Op::Crash { node: 1 },
            Op::Sweep,
            Op::Restart { node: 1 },
        ])
        .unwrap();
    }

    /// Evict-refusal path: a dirty object refuses eviction identically on
    /// both twins, then cleans and evicts.
    #[test]
    fn dirty_evict_refusal_is_twin_identical() {
        run_equivalence(&[
            Op::Write {
                key: 7,
                size_kb: 128,
                node: 2,
                dirty: true,
            },
            Op::Evict { key: 7 },
            Op::MarkClean { key: 7 },
            Op::Evict { key: 7 },
            Op::Sweep,
        ])
        .unwrap();
    }

    /// Keys sharing a tenant prefix stress the resolved-string victim
    /// ordering: "t0/obj0" < "t0/obj12" < "t0/obj9" would be id-order if
    /// the sweep leaked ids (9 interned before 12 here).
    #[test]
    fn victim_order_is_string_not_id() {
        run_equivalence(&[
            Op::Write {
                key: 9,
                size_kb: 32,
                node: 0,
                dirty: false,
            },
            Op::Write {
                key: 12,
                size_kb: 32,
                node: 1,
                dirty: false,
            },
            Op::Write {
                key: 0,
                size_kb: 32,
                node: 2,
                dirty: false,
            },
            Op::Write {
                key: 18,
                size_kb: 32,
                node: 3,
                dirty: true,
            },
            Op::Sweep,
            Op::Crash { node: 0 },
            Op::Sweep,
            Op::Restart { node: 0 },
            Op::Sweep,
        ])
        .unwrap();
    }
}
