//! Chaos properties: the robustness guarantees of DESIGN.md §10 hold for
//! *generated* fault schedules, not just the hand-picked ones of the unit
//! tests — zero data loss while replication covers every crash, and
//! liveness of the write-back path (every accepted write eventually lands
//! in the RSDS once faults cease).

use ofc::chaos::{ChaosSchedule, FaultKind, FaultTemplate, Recurring};
use ofc::core::cache::{start_sweeper, OfcPlane, PlaneConfig};
use ofc::core::telemetry::Telemetry;
use ofc::faas::{DataPlane, ObjectWrite};
use ofc::objstore::latency::LatencyModel;
use ofc::objstore::store::ObjectStore;
use ofc::objstore::ObjectId;
use ofc::rcstore::cluster::Cluster;
use ofc::rcstore::{ClusterConfig, Key, Value as RcValue};
use ofc::simtime::{Sim, SimTime};
use proptest::prelude::*;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;
use std::time::Duration;

const MB: u64 = 1 << 20;
const NODES: usize = 4;

/// A guarded fault sink against a raw cluster: crashes are skipped when
/// they would leave fewer than two live nodes (a quorum OFC never claims
/// to survive with replication 2); persistor faults are ignored (no
/// persistence layer in this harness).
fn cluster_sink(cluster: Rc<RefCell<Cluster>>) -> ofc::chaos::FaultSink {
    Rc::new(move |sim, kind| {
        let now = sim.now();
        let mut c = cluster.borrow_mut();
        match kind {
            FaultKind::NodeCrash(n) => {
                if c.live_nodes() > 2 {
                    c.crash_node(*n, now);
                }
            }
            FaultKind::NodeRestart(n) => c.restart_node(*n),
            FaultKind::SlowNode { node, factor } => c.set_node_slowdown(*node, *factor),
            FaultKind::RestoreNodeSpeed { node } => c.clear_node_slowdown(*node),
            FaultKind::TransientStoreErrors { ops } => c.inject_transient_errors(*ops),
            FaultKind::PersistorFailure { .. } => {}
            // A shard fault resolves to the shard's anchor node; the
            // cluster flushes pending replica batches before the crash.
            FaultKind::ShardCrash(s) => {
                let node = c.shard_master(*s);
                if c.live_nodes() > 2 {
                    c.crash_node(node, now);
                }
            }
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Zero data loss: under any generated schedule of crashes, restarts,
    /// slowdowns, and transient-error bursts — crashes guarded so at
    /// least two nodes stay up — every write the cluster acknowledged is
    /// still readable afterwards, and `rcstore.objects_lost` stays zero.
    #[test]
    fn no_acknowledged_write_is_lost(
        seed in any::<u64>(),
        crash_mean_s in 20u64..120,
        transient_mean_s in 10u64..60,
        slow_mean_s in 20u64..90,
        extra_crash_at in 10u64..400,
    ) {
        let telemetry = Telemetry::standalone();
        let mut cluster = Cluster::new(ClusterConfig {
            nodes: NODES,
            replication_factor: 2,
            node_pool_bytes: 256 * MB,
            max_object_bytes: 10 * MB,
            segment_bytes: 16 * MB,
            ..ClusterConfig::default()
        });
        cluster.bind_telemetry(&telemetry);
        let cluster = Rc::new(RefCell::new(cluster));

        let window_end = SimTime::from_secs(500);
        let schedule = ChaosSchedule::new(NODES)
            .one_shot(
                SimTime::from_secs(extra_crash_at),
                FaultKind::NodeCrash((extra_crash_at % NODES as u64) as usize),
            )
            .recurring(Recurring {
                template: FaultTemplate::Crash,
                mean_interval: Duration::from_secs(crash_mean_s),
                from: SimTime::from_secs(5),
                until: window_end,
            })
            .recurring(Recurring {
                template: FaultTemplate::Restart,
                mean_interval: Duration::from_secs(crash_mean_s),
                from: SimTime::from_secs(5),
                until: window_end,
            })
            .recurring(Recurring {
                template: FaultTemplate::Transient { ops: 4 },
                mean_interval: Duration::from_secs(transient_mean_s),
                from: SimTime::from_secs(5),
                until: window_end,
            })
            .recurring(Recurring {
                template: FaultTemplate::Slow { factor: 8.0, duration: Duration::from_secs(20) },
                mean_interval: Duration::from_secs(slow_mean_s),
                from: SimTime::from_secs(5),
                until: window_end,
            });

        let mut sim = Sim::new(seed);
        ofc::chaos::install(
            &mut sim,
            schedule.generate(seed),
            &telemetry,
            cluster_sink(Rc::clone(&cluster)),
        );

        // Deterministic write load interleaved with the fault schedule.
        let accepted: Rc<RefCell<BTreeMap<Key, u64>>> = Rc::new(RefCell::new(BTreeMap::new()));
        for i in 0..40u64 {
            let cluster = Rc::clone(&cluster);
            let accepted = Rc::clone(&accepted);
            sim.schedule_at(SimTime::from_secs(i * 12), move |sim| {
                let mut c = cluster.borrow_mut();
                let Some(node) = (0..NODES).find(|&n| c.node(n).is_up()) else {
                    return;
                };
                let key = Key::from(format!("w{i}"));
                let size = 64 * 1024 + i;
                if c.write(node, &key, RcValue::synthetic(size), sim.now()).result.is_ok() {
                    accepted.borrow_mut().insert(key, size);
                }
            });
        }

        sim.run_until(SimTime::from_secs(700));

        // Faults cease; verify on a healed cluster.
        {
            let mut c = cluster.borrow_mut();
            c.clear_faults();
            for n in 0..NODES {
                if !c.node(n).is_up() {
                    c.restart_node(n);
                }
            }
        }
        let now = SimTime::from_secs(10_000);
        for (key, size) in accepted.borrow().iter() {
            let r = cluster.borrow_mut().read(0, key, now).result;
            match r {
                Ok((v, _)) => prop_assert_eq!(v.size(), *size, "{} changed size", key),
                Err(e) => return Err(TestCaseError::fail(format!("{key} lost: {e}"))),
            }
        }
        prop_assert_eq!(telemetry.metrics().counter("rcstore.objects_lost"), 0);
    }

    /// Zero data loss on the sharded, batched data plane (DESIGN.md §11):
    /// shard-targeted crashes resolve to shard masters and fire against a
    /// cluster whose replica writes coalesce in batches; because every
    /// structural operation flushes first, no acknowledged write is lost
    /// while replication covers the crash.
    #[test]
    fn sharded_batched_plane_survives_shard_crashes(
        seed in any::<u64>(),
        shards in 2usize..8,
        batch in 2usize..16,
        crash_mean_s in 20u64..90,
    ) {
        let telemetry = Telemetry::standalone();
        let mut cluster = Cluster::new(ClusterConfig {
            nodes: NODES,
            replication_factor: 2,
            node_pool_bytes: 256 * MB,
            max_object_bytes: 10 * MB,
            segment_bytes: 16 * MB,
            shard: ofc::rcstore::shard::ShardConfig {
                shards,
                batch_max_entries: batch,
                ..ofc::rcstore::shard::ShardConfig::default()
            },
            ..ClusterConfig::default()
        });
        cluster.bind_telemetry(&telemetry);
        let cluster = Rc::new(RefCell::new(cluster));

        let window_end = SimTime::from_secs(500);
        let schedule = ChaosSchedule::new(NODES)
            .shards(shards)
            .recurring(Recurring {
                template: FaultTemplate::ShardCrash,
                mean_interval: Duration::from_secs(crash_mean_s),
                from: SimTime::from_secs(5),
                until: window_end,
            })
            .recurring(Recurring {
                template: FaultTemplate::Restart,
                mean_interval: Duration::from_secs(crash_mean_s / 2 + 1),
                from: SimTime::from_secs(5),
                until: window_end,
            })
            .recurring(Recurring {
                template: FaultTemplate::Transient { ops: 3 },
                mean_interval: Duration::from_secs(40),
                from: SimTime::from_secs(5),
                until: window_end,
            });

        let mut sim = Sim::new(seed);
        ofc::chaos::install(
            &mut sim,
            schedule.generate(seed),
            &telemetry,
            cluster_sink(Rc::clone(&cluster)),
        );

        let accepted: Rc<RefCell<BTreeMap<Key, u64>>> = Rc::new(RefCell::new(BTreeMap::new()));
        for i in 0..40u64 {
            let cluster = Rc::clone(&cluster);
            let accepted = Rc::clone(&accepted);
            sim.schedule_at(SimTime::from_secs(i * 12), move |sim| {
                let mut c = cluster.borrow_mut();
                let Some(node) = (0..NODES).find(|&n| c.node(n).is_up()) else {
                    return;
                };
                let key = Key::from(format!("w{i}"));
                let size = 64 * 1024 + i;
                if c.write(node, &key, RcValue::synthetic(size), sim.now()).result.is_ok() {
                    accepted.borrow_mut().insert(key, size);
                }
            });
        }

        sim.run_until(SimTime::from_secs(700));

        {
            let mut c = cluster.borrow_mut();
            c.flush_replication();
            c.clear_faults();
            for n in 0..NODES {
                if !c.node(n).is_up() {
                    c.restart_node(n);
                }
            }
        }
        let now = SimTime::from_secs(10_000);
        for (key, size) in accepted.borrow().iter() {
            let r = cluster.borrow_mut().read(0, key, now).result;
            match r {
                Ok((v, _)) => prop_assert_eq!(v.size(), *size, "{} changed size", key),
                Err(e) => return Err(TestCaseError::fail(format!("{key} lost: {e}"))),
            }
        }
        prop_assert_eq!(telemetry.metrics().counter("rcstore.objects_lost"), 0);
    }

    /// Liveness of the write-back path: for any finite persistor-failure
    /// budget, every accepted write's payload lands in the RSDS (no
    /// shadow left behind, no pending or dead-lettered entry) once the
    /// retry chain and the periodic sweeper have run.
    #[test]
    fn every_accepted_write_eventually_persists(
        seed in any::<u64>(),
        n_failures in 0u32..24,
        n_writes in 1usize..8,
    ) {
        let telemetry = Telemetry::standalone();
        let cluster = Rc::new(RefCell::new(Cluster::new(ClusterConfig {
            nodes: 3,
            replication_factor: 1,
            node_pool_bytes: 256 * MB,
            max_object_bytes: 10 * MB,
            segment_bytes: 16 * MB,
            ..ClusterConfig::default()
        })));
        let store = Rc::new(RefCell::new(ObjectStore::new(LatencyModel::swift())));
        let mut plane = OfcPlane::new(
            PlaneConfig::default(),
            Rc::clone(&cluster),
            Rc::clone(&store),
            &telemetry,
        );
        let persistence = plane.persistence();
        persistence.borrow_mut().inject_persist_failures(n_failures);

        let mut sim = Sim::new(seed);
        start_sweeper(&mut sim, Rc::clone(&persistence));
        let ids: Vec<ObjectId> = (0..n_writes)
            .map(|i| ObjectId::new("out", format!("o{i}")))
            .collect();
        for id in &ids {
            let w = ObjectWrite { id: id.clone(), size: 128 * 1024, is_final: true };
            plane.write(&mut sim, 0, &w, ofc::faas::Admission::admit(), None);
        }
        // The sweeper reschedules itself forever: bound the horizon. Two
        // hours cover any backoff chain plus enough sweeps to drain a
        // budget of 24 injected failures.
        sim.run_until(SimTime::from_secs(2 * 3600));

        prop_assert_eq!(persistence.borrow().pending_count(), 0, "write-backs stuck");
        prop_assert_eq!(persistence.borrow().dead_letter_count(), 0, "dead letters stuck");
        for id in &ids {
            let meta = store.borrow().head(id).0;
            match meta {
                Ok(m) => prop_assert!(!m.is_shadow(), "{} never fulfilled", id),
                Err(e) => return Err(TestCaseError::fail(format!("{id} missing: {e}"))),
            }
        }
        if n_failures == 0 {
            prop_assert_eq!(telemetry.metrics().counter("persist.retries"), 0);
            prop_assert_eq!(telemetry.metrics().counter("persist.dead_letters"), 0);
        }
    }
}
