//! Chaos properties: the robustness guarantees of DESIGN.md §10 hold for
//! *generated* fault schedules, not just the hand-picked ones of the unit
//! tests — zero data loss while replication covers every crash, and
//! liveness of the write-back path (every accepted write eventually lands
//! in the RSDS once faults cease).

use ofc::chaos::{ChaosSchedule, FaultKind, FaultTemplate, Recurring};
use ofc::core::cache::{start_sweeper, OfcPlane, PlaneConfig};
use ofc::core::telemetry::Telemetry;
use ofc::faas::{DataPlane, ObjectWrite};
use ofc::objstore::latency::LatencyModel;
use ofc::objstore::store::ObjectStore;
use ofc::objstore::ObjectId;
use ofc::rcstore::cluster::Cluster;
use ofc::rcstore::{ClusterConfig, Key, Value as RcValue};
use ofc::simtime::{Sim, SimTime};
use proptest::prelude::*;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;
use std::time::Duration;

const MB: u64 = 1 << 20;
const NODES: usize = 4;

/// A guarded fault sink against a raw cluster: crashes are skipped when
/// they would leave fewer than two live nodes (a quorum OFC never claims
/// to survive with replication 2); persistor faults are ignored (no
/// persistence layer in this harness).
fn cluster_sink(cluster: Rc<RefCell<Cluster>>) -> ofc::chaos::FaultSink {
    Rc::new(move |sim, kind| {
        let now = sim.now();
        let mut c = cluster.borrow_mut();
        match kind {
            FaultKind::NodeCrash(n) => {
                if c.live_nodes() > 2 {
                    c.crash_node(*n, now);
                }
            }
            FaultKind::NodeRestart(n) => c.restart_node(*n, now),
            FaultKind::SlowNode { node, factor } => c.set_node_slowdown(*node, *factor),
            FaultKind::RestoreNodeSpeed { node } => c.clear_node_slowdown(*node),
            FaultKind::TransientStoreErrors { ops } => c.inject_transient_errors(*ops),
            FaultKind::PersistorFailure { .. } => {}
            // A shard fault resolves to the shard's anchor node; the
            // cluster flushes pending replica batches before the crash.
            FaultKind::ShardCrash(s) => {
                let node = c.shard_master(*s);
                if c.live_nodes() > 2 {
                    c.crash_node(node, now);
                }
            }
            FaultKind::CoordinatorCrash(r) => c.crash_coordinator(*r, now),
            FaultKind::CoordinatorRestart(r) => c.restart_coordinator(*r, now),
            FaultKind::LeaderIsolate => {
                c.isolate_leader(now);
            }
            FaultKind::Partition { groups } => c.partition_network(groups, now),
            FaultKind::HealPartition => c.heal_partition(now),
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Zero data loss: under any generated schedule of crashes, restarts,
    /// slowdowns, and transient-error bursts — crashes guarded so at
    /// least two nodes stay up — every write the cluster acknowledged is
    /// still readable afterwards, and `rcstore.objects_lost` stays zero.
    #[test]
    fn no_acknowledged_write_is_lost(
        seed in any::<u64>(),
        crash_mean_s in 20u64..120,
        transient_mean_s in 10u64..60,
        slow_mean_s in 20u64..90,
        extra_crash_at in 10u64..400,
    ) {
        let telemetry = Telemetry::standalone();
        let mut cluster = Cluster::new(ClusterConfig {
            nodes: NODES,
            replication_factor: 2,
            node_pool_bytes: 256 * MB,
            max_object_bytes: 10 * MB,
            segment_bytes: 16 * MB,
            ..ClusterConfig::default()
        });
        cluster.bind_telemetry(&telemetry);
        let cluster = Rc::new(RefCell::new(cluster));

        let window_end = SimTime::from_secs(500);
        let schedule = ChaosSchedule::new(NODES)
            .one_shot(
                SimTime::from_secs(extra_crash_at),
                FaultKind::NodeCrash((extra_crash_at % NODES as u64) as usize),
            )
            .recurring(Recurring {
                template: FaultTemplate::Crash,
                mean_interval: Duration::from_secs(crash_mean_s),
                from: SimTime::from_secs(5),
                until: window_end,
            })
            .recurring(Recurring {
                template: FaultTemplate::Restart,
                mean_interval: Duration::from_secs(crash_mean_s),
                from: SimTime::from_secs(5),
                until: window_end,
            })
            .recurring(Recurring {
                template: FaultTemplate::Transient { ops: 4 },
                mean_interval: Duration::from_secs(transient_mean_s),
                from: SimTime::from_secs(5),
                until: window_end,
            })
            .recurring(Recurring {
                template: FaultTemplate::Slow { factor: 8.0, duration: Duration::from_secs(20) },
                mean_interval: Duration::from_secs(slow_mean_s),
                from: SimTime::from_secs(5),
                until: window_end,
            });

        let mut sim = Sim::new(seed);
        ofc::chaos::install(
            &mut sim,
            schedule.generate(seed),
            &telemetry,
            cluster_sink(Rc::clone(&cluster)),
        );

        // Deterministic write load interleaved with the fault schedule.
        let accepted: Rc<RefCell<BTreeMap<Key, u64>>> = Rc::new(RefCell::new(BTreeMap::new()));
        for i in 0..40u64 {
            let cluster = Rc::clone(&cluster);
            let accepted = Rc::clone(&accepted);
            sim.schedule_at(SimTime::from_secs(i * 12), move |sim| {
                let mut c = cluster.borrow_mut();
                let Some(node) = (0..NODES).find(|&n| c.node(n).is_up()) else {
                    return;
                };
                let key = Key::from(format!("w{i}"));
                let size = 64 * 1024 + i;
                if c.write(node, &key, RcValue::synthetic(size), sim.now()).result.is_ok() {
                    accepted.borrow_mut().insert(key, size);
                }
            });
        }

        sim.run_until(SimTime::from_secs(700));

        // Faults cease; verify on a healed cluster.
        {
            let mut c = cluster.borrow_mut();
            c.clear_faults();
            for n in 0..NODES {
                if !c.node(n).is_up() {
                    c.restart_node(n, SimTime::from_secs(700));
                }
            }
        }
        let now = SimTime::from_secs(10_000);
        for (key, size) in accepted.borrow().iter() {
            let r = cluster.borrow_mut().read(0, key, now).result;
            match r {
                Ok((v, _)) => prop_assert_eq!(v.size(), *size, "{} changed size", key),
                Err(e) => return Err(TestCaseError::fail(format!("{key} lost: {e}"))),
            }
        }
        prop_assert_eq!(telemetry.metrics().counter("rcstore.objects_lost"), 0);
    }

    /// Zero data loss on the sharded, batched data plane (DESIGN.md §11):
    /// shard-targeted crashes resolve to shard masters and fire against a
    /// cluster whose replica writes coalesce in batches; because every
    /// structural operation flushes first, no acknowledged write is lost
    /// while replication covers the crash.
    #[test]
    fn sharded_batched_plane_survives_shard_crashes(
        seed in any::<u64>(),
        shards in 2usize..8,
        batch in 2usize..16,
        crash_mean_s in 20u64..90,
    ) {
        let telemetry = Telemetry::standalone();
        let mut cluster = Cluster::new(ClusterConfig {
            nodes: NODES,
            replication_factor: 2,
            node_pool_bytes: 256 * MB,
            max_object_bytes: 10 * MB,
            segment_bytes: 16 * MB,
            shard: ofc::rcstore::shard::ShardConfig {
                shards,
                batch_max_entries: batch,
                ..ofc::rcstore::shard::ShardConfig::default()
            },
            ..ClusterConfig::default()
        });
        cluster.bind_telemetry(&telemetry);
        let cluster = Rc::new(RefCell::new(cluster));

        let window_end = SimTime::from_secs(500);
        let schedule = ChaosSchedule::new(NODES)
            .shards(shards)
            .recurring(Recurring {
                template: FaultTemplate::ShardCrash,
                mean_interval: Duration::from_secs(crash_mean_s),
                from: SimTime::from_secs(5),
                until: window_end,
            })
            .recurring(Recurring {
                template: FaultTemplate::Restart,
                mean_interval: Duration::from_secs(crash_mean_s / 2 + 1),
                from: SimTime::from_secs(5),
                until: window_end,
            })
            .recurring(Recurring {
                template: FaultTemplate::Transient { ops: 3 },
                mean_interval: Duration::from_secs(40),
                from: SimTime::from_secs(5),
                until: window_end,
            });

        let mut sim = Sim::new(seed);
        ofc::chaos::install(
            &mut sim,
            schedule.generate(seed),
            &telemetry,
            cluster_sink(Rc::clone(&cluster)),
        );

        let accepted: Rc<RefCell<BTreeMap<Key, u64>>> = Rc::new(RefCell::new(BTreeMap::new()));
        for i in 0..40u64 {
            let cluster = Rc::clone(&cluster);
            let accepted = Rc::clone(&accepted);
            sim.schedule_at(SimTime::from_secs(i * 12), move |sim| {
                let mut c = cluster.borrow_mut();
                let Some(node) = (0..NODES).find(|&n| c.node(n).is_up()) else {
                    return;
                };
                let key = Key::from(format!("w{i}"));
                let size = 64 * 1024 + i;
                if c.write(node, &key, RcValue::synthetic(size), sim.now()).result.is_ok() {
                    accepted.borrow_mut().insert(key, size);
                }
            });
        }

        sim.run_until(SimTime::from_secs(700));

        {
            let mut c = cluster.borrow_mut();
            c.flush_replication();
            c.clear_faults();
            for n in 0..NODES {
                if !c.node(n).is_up() {
                    c.restart_node(n, SimTime::from_secs(700));
                }
            }
        }
        let now = SimTime::from_secs(10_000);
        for (key, size) in accepted.borrow().iter() {
            let r = cluster.borrow_mut().read(0, key, now).result;
            match r {
                Ok((v, _)) => prop_assert_eq!(v.size(), *size, "{} changed size", key),
                Err(e) => return Err(TestCaseError::fail(format!("{key} lost: {e}"))),
            }
        }
        prop_assert_eq!(telemetry.metrics().counter("rcstore.objects_lost"), 0);
    }

    /// Liveness of the write-back path: for any finite persistor-failure
    /// budget, every accepted write's payload lands in the RSDS (no
    /// shadow left behind, no pending or dead-lettered entry) once the
    /// retry chain and the periodic sweeper have run.
    #[test]
    fn every_accepted_write_eventually_persists(
        seed in any::<u64>(),
        n_failures in 0u32..24,
        n_writes in 1usize..8,
    ) {
        let telemetry = Telemetry::standalone();
        let cluster = Rc::new(RefCell::new(Cluster::new(ClusterConfig {
            nodes: 3,
            replication_factor: 1,
            node_pool_bytes: 256 * MB,
            max_object_bytes: 10 * MB,
            segment_bytes: 16 * MB,
            ..ClusterConfig::default()
        })));
        let store = Rc::new(RefCell::new(ObjectStore::new(LatencyModel::swift())));
        let mut plane = OfcPlane::new(
            PlaneConfig::default(),
            Rc::clone(&cluster),
            Rc::clone(&store),
            &telemetry,
        );
        let persistence = plane.persistence();
        persistence.borrow_mut().inject_persist_failures(n_failures);

        let mut sim = Sim::new(seed);
        start_sweeper(&mut sim, Rc::clone(&persistence));
        let ids: Vec<ObjectId> = (0..n_writes)
            .map(|i| ObjectId::new("out", format!("o{i}")))
            .collect();
        for id in &ids {
            let w = ObjectWrite { id: *id, size: 128 * 1024, is_final: true };
            plane.write(&mut sim, 0, &w, ofc::faas::Admission::admit(), None);
        }
        // The sweeper reschedules itself forever: bound the horizon. Two
        // hours cover any backoff chain plus enough sweeps to drain a
        // budget of 24 injected failures.
        sim.run_until(SimTime::from_secs(2 * 3600));

        prop_assert_eq!(persistence.borrow().pending_count(), 0, "write-backs stuck");
        prop_assert_eq!(persistence.borrow().dead_letter_count(), 0, "dead letters stuck");
        for id in &ids {
            let meta = store.borrow().head(id).0;
            match meta {
                Ok(m) => prop_assert!(!m.is_shadow(), "{} never fulfilled", id),
                Err(e) => return Err(TestCaseError::fail(format!("{id} missing: {e}"))),
            }
        }
        if n_failures == 0 {
            prop_assert_eq!(telemetry.metrics().counter("persist.retries"), 0);
            prop_assert_eq!(telemetry.metrics().counter("persist.dead_letters"), 0);
        }
    }
}

/// Shared body of the failover durability property and its pinned
/// regression seeds: a 3-replica control plane under coordinator crashes,
/// leader isolations, random bipartitions, and guarded node crashes.
/// Every write the cluster acknowledged must be readable after the last
/// partition heals, and `rcstore.objects_lost` must stay zero.
fn failover_durability_case(
    seed: u64,
    coord_mean_s: u64,
    isolate_mean_s: u64,
    partition_mean_s: u64,
    crash_mean_s: u64,
) -> Result<(), TestCaseError> {
    let telemetry = Telemetry::standalone();
    let mut cluster = Cluster::new(ClusterConfig {
        nodes: NODES,
        replication_factor: 2,
        node_pool_bytes: 256 * MB,
        max_object_bytes: 10 * MB,
        segment_bytes: 16 * MB,
        raft: ofc::rcstore::raft::RaftConfig {
            replicas: 3,
            ..ofc::rcstore::raft::RaftConfig::default()
        },
        ..ClusterConfig::default()
    });
    cluster.bind_telemetry(&telemetry);
    let cluster = Rc::new(RefCell::new(cluster));

    let window_end = SimTime::from_secs(500);
    let schedule = ChaosSchedule::new(NODES)
        .coordinators(3)
        .recurring(Recurring {
            template: FaultTemplate::CoordinatorCrash {
                heal_after: Duration::from_secs(25),
            },
            mean_interval: Duration::from_secs(coord_mean_s),
            from: SimTime::from_secs(5),
            until: window_end,
        })
        .recurring(Recurring {
            template: FaultTemplate::LeaderIsolate {
                heal_after: Duration::from_secs(20),
            },
            mean_interval: Duration::from_secs(isolate_mean_s),
            from: SimTime::from_secs(5),
            until: window_end,
        })
        .recurring(Recurring {
            template: FaultTemplate::Partition {
                heal_after: Duration::from_secs(30),
            },
            mean_interval: Duration::from_secs(partition_mean_s),
            from: SimTime::from_secs(5),
            until: window_end,
        })
        .recurring(Recurring {
            template: FaultTemplate::Crash,
            mean_interval: Duration::from_secs(crash_mean_s),
            from: SimTime::from_secs(5),
            until: window_end,
        })
        .recurring(Recurring {
            template: FaultTemplate::Restart,
            mean_interval: Duration::from_secs(crash_mean_s),
            from: SimTime::from_secs(5),
            until: window_end,
        });

    let mut sim = Sim::new(seed);
    ofc::chaos::install(
        &mut sim,
        schedule.generate(seed),
        &telemetry,
        cluster_sink(Rc::clone(&cluster)),
    );
    // The control-plane heartbeat the runtime would provide: elections
    // fire and deferred recoveries drain between fault events.
    for tick in 1..7000u64 {
        let cluster = Rc::clone(&cluster);
        sim.schedule_at(
            SimTime::ZERO + Duration::from_millis(tick * 100),
            move |sim| {
                cluster.borrow_mut().coordinator_pump(sim.now());
            },
        );
    }

    let accepted: Rc<RefCell<BTreeMap<Key, u64>>> = Rc::new(RefCell::new(BTreeMap::new()));
    for i in 0..40u64 {
        let cluster = Rc::clone(&cluster);
        let accepted = Rc::clone(&accepted);
        sim.schedule_at(SimTime::from_secs(i * 12), move |sim| {
            let key = Key::from(format!("w{i}"));
            let size = 64 * 1024 + i;
            let ok = {
                let mut c = cluster.borrow_mut();
                let Some(node) = (0..NODES).find(|&n| c.node(n).is_up()) else {
                    return;
                };
                c.write(node, &key, RcValue::synthetic(size), sim.now())
                    .result
                    .is_ok()
            };
            if ok {
                accepted.borrow_mut().insert(key, size);
            }
        });
    }

    sim.run_until(SimTime::from_secs(700));

    // Faults cease; heal, settle the control plane, and verify.
    {
        let mut c = cluster.borrow_mut();
        c.heal_partition(SimTime::from_secs(700));
        for r in 0..3 {
            if !c.coordinator().replica_up(r) {
                c.restart_coordinator(r, SimTime::from_secs(701));
            }
        }
        for n in 0..NODES {
            if !c.node(n).is_up() {
                c.restart_node(n, SimTime::from_secs(702));
            }
        }
        c.clear_faults();
        for s in 0..5u64 {
            c.coordinator_pump(SimTime::from_secs(703 + s));
        }
        prop_assert!(c.coordinator().leader().is_some(), "quorum settled");
        prop_assert_eq!(c.deferred_recoveries(), 0, "recoveries drained");
    }
    let now = SimTime::from_secs(10_000);
    let written: Vec<(Key, u64)> = accepted.borrow().iter().map(|(k, &s)| (*k, s)).collect();
    for (key, size) in &written {
        let r = cluster.borrow_mut().read(0, key, now).result;
        match r {
            Ok((v, _)) => prop_assert_eq!(v.size(), *size, "{} changed size", key),
            Err(e) => return Err(TestCaseError::fail(format!("{key} lost: {e}"))),
        }
    }
    prop_assert_eq!(telemetry.metrics().counter("rcstore.objects_lost"), 0);
    Ok(())
}

/// Shared body of the minority-partition property and its pinned seeds:
/// while a partition isolates a minority from the coordinator quorum,
/// minority-side writes must bounce with the *typed* transient error —
/// never be silently dropped, never ack-then-lose.
fn minority_partition_case(seed: u64, minority_node: usize) -> Result<(), TestCaseError> {
    let telemetry = Telemetry::standalone();
    let mut cluster = Cluster::new(ClusterConfig {
        nodes: NODES,
        replication_factor: 2,
        node_pool_bytes: 256 * MB,
        max_object_bytes: 10 * MB,
        segment_bytes: 16 * MB,
        raft: ofc::rcstore::raft::RaftConfig {
            replicas: 3,
            seed,
            ..ofc::rcstore::raft::RaftConfig::default()
        },
        ..ClusterConfig::default()
    });
    cluster.bind_telemetry(&telemetry);

    // Pre-partition writes from every node succeed.
    for i in 0..8u64 {
        let r = cluster.write(
            (i % NODES as u64) as usize,
            &Key::from(format!("pre{i}")),
            RcValue::synthetic(32 * 1024),
            SimTime::from_secs(i),
        );
        prop_assert!(r.result.is_ok());
    }

    // Coordinator replicas live on nodes 0-2: isolating any single node
    // leaves a 2-of-3 quorum on the other side.
    let rest: Vec<usize> = (0..NODES).filter(|&n| n != minority_node).collect();
    cluster.partition_network(&[vec![minority_node], rest.clone()], SimTime::from_secs(60));
    let mut t = SimTime::from_secs(60);
    for _ in 0..4 {
        t += Duration::from_millis(400);
        cluster.coordinator_pump(t);
    }

    // Minority side: every write bounces with the typed transient error.
    for i in 0..6u64 {
        let r = cluster.write(
            minority_node,
            &Key::from(format!("min{i}")),
            RcValue::synthetic(16 * 1024),
            t + Duration::from_secs(i),
        );
        match r.result {
            Err(ofc::rcstore::RcError::Transient) => {}
            other => {
                return Err(TestCaseError::fail(format!(
                    "minority write {i} was not a typed transient rejection: {other:?}"
                )))
            }
        }
    }
    // Majority side keeps serving.
    let q = cluster.write(
        rest[0],
        &Key::from("maj"),
        RcValue::synthetic(16 * 1024),
        t + Duration::from_secs(10),
    );
    prop_assert!(q.result.is_ok(), "majority side must keep serving");

    // Heal: everyone serves again and nothing was lost.
    cluster.heal_partition(t + Duration::from_secs(20));
    let t2 = t + Duration::from_secs(21);
    let r = cluster.write(
        minority_node,
        &Key::from("after"),
        RcValue::synthetic(16 * 1024),
        t2,
    );
    prop_assert!(r.result.is_ok(), "minority serves after heal");
    for i in 0..8u64 {
        let key = Key::from(format!("pre{i}"));
        prop_assert!(
            cluster
                .read(0, &key, t2 + Duration::from_secs(1))
                .result
                .is_ok(),
            "pre-partition write {} lost",
            i
        );
    }
    prop_assert_eq!(telemetry.metrics().counter("rcstore.objects_lost"), 0);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// DESIGN.md §16: no acknowledged write or committed tablet
    /// assignment is lost across leader failovers and healed partitions,
    /// and the majority side keeps serving throughout.
    #[test]
    fn no_acknowledged_write_lost_across_failovers(
        seed in any::<u64>(),
        coord_mean_s in 40u64..150,
        isolate_mean_s in 60u64..200,
        partition_mean_s in 60u64..200,
        crash_mean_s in 40u64..150,
    ) {
        failover_durability_case(seed, coord_mean_s, isolate_mean_s, partition_mean_s, crash_mean_s)?;
    }

    /// DESIGN.md §16: minority-side writes bounce with the typed
    /// [`ofc::rcstore::RcError::Transient`] — never silent loss.
    #[test]
    fn minority_partition_writes_bounce_typed(
        seed in any::<u64>(),
        minority_node in 0usize..NODES,
    ) {
        minority_partition_case(seed, minority_node)?;
    }
}

/// Pinned regression seeds for the failover properties: trajectories that
/// exercised the interesting paths while the suite was developed (leader
/// re-elections under back-to-back coordinator crashes, node crashes
/// inside partition windows, deferred recoveries draining at heal). Run
/// as plain unit tests so a future regression reproduces immediately.
mod failover_regression_seeds {
    use super::*;

    #[test]
    fn failover_seed_42() {
        failover_durability_case(42, 60, 90, 90, 60).unwrap();
    }

    #[test]
    fn failover_seed_7_dense_faults() {
        failover_durability_case(7, 40, 60, 60, 40).unwrap();
    }

    #[test]
    fn failover_seed_1337_sparse_faults() {
        failover_durability_case(1337, 150, 200, 200, 150).unwrap();
    }

    #[test]
    fn minority_partition_each_node() {
        for node in 0..NODES {
            minority_partition_case(0xfc0, node).unwrap();
        }
    }
}
