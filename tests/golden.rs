//! Golden-figure regression suite: re-runs the cheap figure binaries at
//! their fixed seeds and byte-compares the JSON they emit against the
//! committed `results/*.json`. Any unintended change to the deterministic
//! simulation — placement, latency model, RNG streams, serialization —
//! shows up as a diff here before it silently skews every figure.
//!
//! Regenerate the goldens after an *intended* change with:
//!
//! ```text
//! cargo build --release
//! OFC_GOLDEN_BLESS=1 cargo test --test golden
//! ```
//!
//! The harness drives the pre-built release binaries (`cargo build
//! --release` first); a missing binary skips its case with a note rather
//! than failing, so `cargo test` stays usable without a release build.

use std::path::PathBuf;
use std::process::Command;

/// The cheap, deterministic figures worth re-running on every test pass.
/// Each entry is the binary name; it writes `results/<name>.json`.
const GOLDEN_FIGURES: &[&str] = &["fig2", "fig5", "cache_benefit", "maturation"];

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

fn blessing() -> bool {
    std::env::var("OFC_GOLDEN_BLESS")
        .map(|v| v == "1")
        .unwrap_or(false)
}

/// Runs one figure binary into a scratch results dir (with extra env
/// vars) and returns the `<out_name>.json` it produced, or `None` (with a
/// note) when the binary is not built.
fn regenerate_with(bin_name: &str, out_name: &str, envs: &[(&str, &str)]) -> Option<Vec<u8>> {
    let root = repo_root();
    let bin = root.join("target/release").join(bin_name);
    if !bin.exists() {
        eprintln!("golden: skipping {bin_name} — build it with `cargo build --release`");
        return None;
    }
    // Unique per call: the serial and parallel variants of one figure run
    // concurrently and would otherwise race on a shared scratch dir.
    static SCRATCH_SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let seq = SCRATCH_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let scratch = std::env::temp_dir().join(format!(
        "ofc-golden-{}-{seq}-{out_name}",
        std::process::id()
    ));
    std::fs::create_dir_all(&scratch).expect("scratch dir");
    let mut cmd = Command::new(&bin);
    cmd.env("OFC_RESULTS_DIR", &scratch);
    for (k, v) in envs {
        cmd.env(k, v);
    }
    let status = cmd
        .output()
        .unwrap_or_else(|e| panic!("golden: {bin_name} failed to launch: {e}"));
    assert!(
        status.status.success(),
        "golden: {bin_name} exited with {:?}\n{}",
        status.status,
        String::from_utf8_lossy(&status.stderr)
    );
    let out = scratch.join(format!("{out_name}.json"));
    let bytes = std::fs::read(&out)
        .unwrap_or_else(|e| panic!("golden: {bin_name} wrote no {}: {e}", out.display()));
    std::fs::remove_dir_all(&scratch).ok();
    Some(bytes)
}

fn regenerate(name: &str) -> Option<Vec<u8>> {
    regenerate_with(name, name, &[])
}

fn committed_path(name: &str) -> PathBuf {
    repo_root().join("results").join(format!("{name}.json"))
}

/// First diverging line of two JSON blobs, for a readable failure.
fn first_diff(a: &[u8], b: &[u8]) -> String {
    let (a, b) = (String::from_utf8_lossy(a), String::from_utf8_lossy(b));
    for (i, (la, lb)) in a.lines().zip(b.lines()).enumerate() {
        if la != lb {
            return format!("line {}: committed {la:?} vs regenerated {lb:?}", i + 1);
        }
    }
    format!(
        "line counts differ: committed {} vs regenerated {}",
        a.lines().count(),
        b.lines().count()
    )
}

fn check(name: &str) {
    let Some(fresh) = regenerate(name) else {
        return;
    };
    check_bytes(name, fresh, true);
}

fn check_bytes(name: &str, fresh: Vec<u8>, bless_allowed: bool) {
    let golden = committed_path(name);
    if blessing() && !bless_allowed {
        // Another case owns this golden file; skip to avoid racing its
        // bless write under the parallel test harness.
        return;
    }
    if blessing() {
        std::fs::write(&golden, &fresh).expect("bless golden");
        eprintln!("golden: blessed {}", golden.display());
        return;
    }
    let committed = std::fs::read(&golden).unwrap_or_else(|e| {
        panic!(
            "golden: missing {} ({e}); run with OFC_GOLDEN_BLESS=1",
            golden.display()
        )
    });
    assert!(
        committed == fresh,
        "golden: {name} drifted from results/{name}.json — {}\n\
         If the change is intended, regenerate with OFC_GOLDEN_BLESS=1.",
        first_diff(&committed, &fresh)
    );
    // A corrupt or truncated golden should fail loudly, not silently
    // byte-match forever.
    let text = String::from_utf8(fresh).expect("figure JSON is UTF-8");
    let trimmed = text.trim();
    assert!(
        trimmed.starts_with(['{', '[']) && trimmed.ends_with(['}', ']']),
        "golden: {name} output is not a JSON document"
    );
}

#[test]
fn fig2_matches_golden() {
    check("fig2");
}

#[test]
fn fig5_matches_golden() {
    check("fig5");
}

#[test]
fn cache_benefit_matches_golden() {
    check("cache_benefit");
}

#[test]
fn maturation_matches_golden() {
    check("maturation");
}

/// Shortened deterministic macro24 (2-minute window), run serially.
/// Guards the indexed eviction sweep: any behavioral drift from the old
/// full-scan janitor shows up as a diff against the committed smoke
/// golden.
#[test]
fn macro24_smoke_serial_matches_golden() {
    let Some(fresh) = regenerate_with(
        "macro24",
        "macro24_smoke",
        &[("OFC_MACRO_SMOKE", "1"), ("OFC_BENCH_THREADS", "1")],
    ) else {
        return;
    };
    check_bytes("macro24_smoke", fresh, true);
}

/// The same smoke run fanned out over four workers must be byte-identical
/// to the serial golden: the parallel replay runner collects results in
/// submission order, so thread count can never change figure JSON.
#[test]
fn macro24_smoke_parallel_matches_serial_golden() {
    let Some(fresh) = regenerate_with(
        "macro24",
        "macro24_smoke",
        &[
            ("OFC_MACRO_SMOKE", "1"),
            ("OFC_BENCH_THREADS", "4"),
            // Defeat the small-bin serial fallback: this variant exists
            // to drive the parallel runner.
            ("OFC_BENCH_MIN_PAR_SIMS", "1"),
        ],
    ) else {
        return;
    };
    check_bytes("macro24_smoke", fresh, false);
}

/// Shortened deterministic fig9 (2-minute window), run serially: the
/// default-policy byte-identity probe for the policy-plane refactor
/// (DESIGN.md §15).
#[test]
fn fig9_smoke_serial_matches_golden() {
    let Some(fresh) = regenerate_with(
        "fig9",
        "fig9_smoke",
        &[("OFC_MACRO_SMOKE", "1"), ("OFC_BENCH_THREADS", "1")],
    ) else {
        return;
    };
    check_bytes("fig9_smoke", fresh, true);
}

#[test]
fn fig9_smoke_parallel_matches_serial_golden() {
    let Some(fresh) = regenerate_with(
        "fig9",
        "fig9_smoke",
        &[
            ("OFC_MACRO_SMOKE", "1"),
            ("OFC_BENCH_THREADS", "4"),
            // Defeat the small-bin serial fallback: this variant exists
            // to drive the parallel runner.
            ("OFC_BENCH_MIN_PAR_SIMS", "1"),
        ],
    ) else {
        return;
    };
    check_bytes("fig9_smoke", fresh, false);
}

/// Shortened three-policy bake-off (2-minute window), run serially. Any
/// drift in OFC, Faa$T, or InfiniCache policy behavior — admission,
/// eviction, prefetch, cold-tier parking, or the rent model — lands here.
#[test]
fn bakeoff_smoke_serial_matches_golden() {
    let Some(fresh) = regenerate_with(
        "bakeoff",
        "bakeoff_smoke",
        &[("OFC_MACRO_SMOKE", "1"), ("OFC_BENCH_THREADS", "1")],
    ) else {
        return;
    };
    check_bytes("bakeoff_smoke", fresh, true);
}

#[test]
fn bakeoff_smoke_parallel_matches_serial_golden() {
    let Some(fresh) = regenerate_with(
        "bakeoff",
        "bakeoff_smoke",
        &[
            ("OFC_MACRO_SMOKE", "1"),
            ("OFC_BENCH_THREADS", "4"),
            // Defeat the small-bin serial fallback: this variant exists
            // to drive the parallel runner.
            ("OFC_BENCH_MIN_PAR_SIMS", "1"),
        ],
    ) else {
        return;
    };
    check_bytes("bakeoff_smoke", fresh, false);
}

/// Bounded mega-scale window (DESIGN.md §18): all six million-user
/// variants — headline, noisy neighbor and occupancy attack with and
/// without quotas, and the replicated-coordinator crash drill — at CI
/// size, run serially. Any drift in the mega generator, the quota
/// plane, or the per-decile accounting lands here.
#[test]
fn mega_smoke_serial_matches_golden() {
    let Some(fresh) = regenerate_with(
        "macro_mega",
        "macro_mega_smoke",
        &[("OFC_MEGA_SMOKE", "1"), ("OFC_BENCH_THREADS", "1")],
    ) else {
        return;
    };
    check_bytes("macro_mega_smoke", fresh, true);
}

/// The same six sims fanned out over four workers with cost-ordered
/// claiming must be byte-identical to the serial golden.
#[test]
fn mega_smoke_parallel_matches_serial_golden() {
    let Some(fresh) = regenerate_with(
        "macro_mega",
        "macro_mega_smoke",
        &[
            ("OFC_MEGA_SMOKE", "1"),
            ("OFC_BENCH_THREADS", "4"),
            // Defeat the small-bin serial fallback: this variant exists
            // to drive the parallel runner.
            ("OFC_BENCH_MIN_PAR_SIMS", "1"),
        ],
    ) else {
        return;
    };
    check_bytes("macro_mega_smoke", fresh, false);
}

/// Shortened control-plane failover drill (5-minute window, Raft
/// coordinator + gossip membership under crash/partition faults), run
/// serially. Any drift in consensus, membership, degraded-mode writes,
/// or the durability ledger lands here.
#[test]
fn failover_smoke_serial_matches_golden() {
    let Some(fresh) = regenerate_with(
        "chaos",
        "failover_smoke",
        &[
            ("OFC_MACRO_SMOKE", "1"),
            ("OFC_CHAOS_FAILOVER", "1"),
            ("OFC_BENCH_THREADS", "1"),
        ],
    ) else {
        return;
    };
    check_bytes("failover_smoke", fresh, true);
}

/// The drill's baseline and chaos sims fan out over the parallel runner;
/// thread count must never change the report bytes.
#[test]
fn failover_smoke_parallel_matches_serial_golden() {
    let Some(fresh) = regenerate_with(
        "chaos",
        "failover_smoke",
        &[
            ("OFC_MACRO_SMOKE", "1"),
            ("OFC_CHAOS_FAILOVER", "1"),
            ("OFC_BENCH_THREADS", "4"),
            // Defeat the small-bin serial fallback: this variant exists
            // to drive the parallel runner.
            ("OFC_BENCH_MIN_PAR_SIMS", "1"),
        ],
    ) else {
        return;
    };
    check_bytes("failover_smoke", fresh, false);
}

#[test]
fn golden_set_is_complete() {
    // Every golden this suite guards exists in results/ (after a bless).
    if blessing() {
        return;
    }
    for name in GOLDEN_FIGURES.iter().chain(&[
        "macro24_smoke",
        "fig9_smoke",
        "bakeoff_smoke",
        "bakeoff",
        "failover_smoke",
        "macro_mega_smoke",
        "macro_mega",
    ]) {
        assert!(
            committed_path(name).exists(),
            "results/{name}.json missing — run OFC_GOLDEN_BLESS=1 cargo test --test golden"
        );
    }
}
