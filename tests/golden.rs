//! Golden-figure regression suite: re-runs the cheap figure binaries at
//! their fixed seeds and byte-compares the JSON they emit against the
//! committed `results/*.json`. Any unintended change to the deterministic
//! simulation — placement, latency model, RNG streams, serialization —
//! shows up as a diff here before it silently skews every figure.
//!
//! Regenerate the goldens after an *intended* change with:
//!
//! ```text
//! cargo build --release
//! OFC_GOLDEN_BLESS=1 cargo test --test golden
//! ```
//!
//! The harness drives the pre-built release binaries (`cargo build
//! --release` first); a missing binary skips its case with a note rather
//! than failing, so `cargo test` stays usable without a release build.

use std::path::PathBuf;
use std::process::Command;

/// The cheap, deterministic figures worth re-running on every test pass.
/// Each entry is the binary name; it writes `results/<name>.json`.
const GOLDEN_FIGURES: &[&str] = &["fig2", "fig5", "cache_benefit", "maturation"];

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

fn blessing() -> bool {
    std::env::var("OFC_GOLDEN_BLESS")
        .map(|v| v == "1")
        .unwrap_or(false)
}

/// Runs one figure binary into a scratch results dir and returns the JSON
/// it produced, or `None` (with a note) when the binary is not built.
fn regenerate(name: &str) -> Option<Vec<u8>> {
    let root = repo_root();
    let bin = root.join("target/release").join(name);
    if !bin.exists() {
        eprintln!("golden: skipping {name} — build it with `cargo build --release`");
        return None;
    }
    let scratch = std::env::temp_dir().join(format!("ofc-golden-{}-{name}", std::process::id()));
    std::fs::create_dir_all(&scratch).expect("scratch dir");
    let status = Command::new(&bin)
        .env("OFC_RESULTS_DIR", &scratch)
        .output()
        .unwrap_or_else(|e| panic!("golden: {name} failed to launch: {e}"));
    assert!(
        status.status.success(),
        "golden: {name} exited with {:?}\n{}",
        status.status,
        String::from_utf8_lossy(&status.stderr)
    );
    let out = scratch.join(format!("{name}.json"));
    let bytes = std::fs::read(&out)
        .unwrap_or_else(|e| panic!("golden: {name} wrote no {}: {e}", out.display()));
    std::fs::remove_dir_all(&scratch).ok();
    Some(bytes)
}

fn committed_path(name: &str) -> PathBuf {
    repo_root().join("results").join(format!("{name}.json"))
}

/// First diverging line of two JSON blobs, for a readable failure.
fn first_diff(a: &[u8], b: &[u8]) -> String {
    let (a, b) = (String::from_utf8_lossy(a), String::from_utf8_lossy(b));
    for (i, (la, lb)) in a.lines().zip(b.lines()).enumerate() {
        if la != lb {
            return format!("line {}: committed {la:?} vs regenerated {lb:?}", i + 1);
        }
    }
    format!(
        "line counts differ: committed {} vs regenerated {}",
        a.lines().count(),
        b.lines().count()
    )
}

fn check(name: &str) {
    let Some(fresh) = regenerate(name) else {
        return;
    };
    let golden = committed_path(name);
    if blessing() {
        std::fs::write(&golden, &fresh).expect("bless golden");
        eprintln!("golden: blessed {}", golden.display());
        return;
    }
    let committed = std::fs::read(&golden).unwrap_or_else(|e| {
        panic!(
            "golden: missing {} ({e}); run with OFC_GOLDEN_BLESS=1",
            golden.display()
        )
    });
    assert!(
        committed == fresh,
        "golden: {name} drifted from results/{name}.json — {}\n\
         If the change is intended, regenerate with OFC_GOLDEN_BLESS=1.",
        first_diff(&committed, &fresh)
    );
    // A corrupt or truncated golden should fail loudly, not silently
    // byte-match forever.
    let text = String::from_utf8(fresh).expect("figure JSON is UTF-8");
    let trimmed = text.trim();
    assert!(
        trimmed.starts_with(['{', '[']) && trimmed.ends_with(['}', ']']),
        "golden: {name} output is not a JSON document"
    );
}

#[test]
fn fig2_matches_golden() {
    check("fig2");
}

#[test]
fn fig5_matches_golden() {
    check("fig5");
}

#[test]
fn cache_benefit_matches_golden() {
    check("cache_benefit");
}

#[test]
fn maturation_matches_golden() {
    check("maturation");
}

#[test]
fn golden_set_is_complete() {
    // Every golden this suite guards exists in results/ (after a bless).
    if blessing() {
        return;
    }
    for name in GOLDEN_FIGURES {
        assert!(
            committed_path(name).exists(),
            "results/{name}.json missing — run OFC_GOLDEN_BLESS=1 cargo test --test golden"
        );
    }
}
