//! End-to-end integration tests across all crates: the full OFC stack vs
//! baselines, pipelines, OOM handling, fault injection, maturation gating.

use ofc::core::ofc::Ofc;
use ofc::faas::baselines::{DirectPlane, NoopPlane};
use ofc::faas::platform::{Platform, PlatformHandle};
use ofc::faas::registry::{FunctionSpec, Registry};
use ofc::faas::{
    ArgValue, Args, Completion, FunctionId, InvocationRequest, PlatformConfig, Served, TenantId,
};
use ofc::objstore::store::ObjectStore;
use ofc::objstore::{ObjectId, Payload};
use ofc::simtime::{Sim, SimTime};
use ofc::workloads::catalog::{gen_image_with_bytes, Catalog};
use ofc::workloads::multimedia::{profile, MultimediaModel, Profile};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::cell::RefCell;
use std::rc::Rc;

struct Stack {
    sim: Sim,
    platform: PlatformHandle,
    store: Rc<RefCell<ObjectStore>>,
    catalog: Catalog,
    ofc: Option<Ofc>,
    tenant: TenantId,
}

fn features_for(catalog: &Catalog) -> ofc::core::scheduler::FeatureFn {
    let catalog = catalog.clone();
    Rc::new(move |_t, f, args| {
        let p = profile(f.as_ref())?;
        let input = args.values().find_map(|v| match v {
            ArgValue::Obj(id) => Some(*id),
            _ => None,
        })?;
        Some(p.features(&catalog.get(&input)?, args))
    })
}

fn stack(with_ofc: bool, seed: u64) -> Stack {
    let store = Rc::new(RefCell::new(ObjectStore::swift()));
    let catalog = Catalog::new();
    let mut sim = Sim::new(seed);
    let (platform, ofc) = if with_ofc {
        let platform = Platform::build(
            PlatformConfig::default(),
            Registry::new(),
            Box::new(NoopPlane),
        );
        let ofc = Ofc::builder(&platform)
            .store(Rc::clone(&store))
            .features(features_for(&catalog))
            .build();
        ofc.start(&mut sim);
        (platform, Some(ofc))
    } else {
        let platform = Platform::build(
            PlatformConfig::default(),
            Registry::new(),
            Box::new(DirectPlane::new(Rc::clone(&store))),
        );
        (platform, None)
    };
    Stack {
        sim,
        platform,
        store,
        catalog,
        ofc,
        tenant: TenantId::from("it"),
    }
}

fn register(s: &Stack, p: &'static Profile, booked: u64) {
    s.platform.register(FunctionSpec {
        id: FunctionId::from(p.name),
        tenant: s.tenant,
        booked_mem: booked,
        model: Rc::new(MultimediaModel::new(p, s.catalog.clone())),
    });
    if let Some(ofc) = &s.ofc {
        ofc.register_function(s.tenant.as_ref(), p.name, p.feature_schema());
    }
}

fn upload(s: &Stack, key: &str, bytes: u64, seed: u64) -> ObjectId {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let meta = gen_image_with_bytes(bytes, &mut rng);
    let id = ObjectId::new("it-in", key);
    s.store
        .borrow_mut()
        .put(&id, Payload::Synthetic(meta.bytes), meta.tags(), false);
    s.catalog.insert(id, meta);
    id
}

fn submit(s: &mut Stack, p: &'static Profile, input: &ObjectId, seed: u64) {
    let mut args = Args::new();
    args.insert("input".into(), ArgValue::Obj(*input));
    if let Some(spec) = p.arg {
        args.insert(spec.name.into(), ArgValue::Num((spec.lo + spec.hi) / 2.0));
    }
    s.platform.submit(
        &mut s.sim,
        InvocationRequest {
            function: FunctionId::from(p.name),
            tenant: s.tenant,
            args,
            seed,
            pipeline: None,
        },
    );
}

#[test]
fn repeated_reads_become_cache_hits_and_beat_swift() {
    let p = profile("wand_sepia").unwrap();
    let mut totals = Vec::new();
    for with_ofc in [false, true] {
        let mut s = stack(with_ofc, 1);
        register(&s, p, 512 << 20);
        let input = upload(&s, "a", 64 << 10, 1);
        for i in 0..5 {
            submit(&mut s, p, &input, 10 + i);
            s.sim.run_until(SimTime::from_secs((i + 1) * 30));
        }
        let recs = s.platform.drain_records();
        assert_eq!(recs.len(), 5);
        assert!(recs.iter().all(|r| r.completion == Completion::Success));
        if with_ofc {
            // First read misses, the rest hit.
            assert_eq!(recs[0].reads_served, vec![Served::Miss]);
            for r in &recs[1..] {
                assert!(
                    matches!(r.reads_served[0], Served::LocalHit | Served::RemoteHit),
                    "read {:?}",
                    r.reads_served
                );
            }
        }
        totals.push(recs.iter().map(|r| r.etl().as_secs_f64()).sum::<f64>());
    }
    assert!(
        totals[1] < totals[0] * 0.6,
        "OFC {:.3}s should clearly beat Swift {:.3}s",
        totals[1],
        totals[0]
    );
}

#[test]
fn outputs_are_persisted_despite_write_back() {
    let p = profile("wand_resize").unwrap();
    let mut s = stack(true, 2);
    register(&s, p, 512 << 20);
    let input = upload(&s, "a", 32 << 10, 2);
    submit(&mut s, p, &input, 3);
    s.sim.run_until(SimTime::from_secs(600));
    let recs = s.platform.drain_records();
    assert_eq!(recs[0].completion, Completion::Success);
    // The output landed in the RSDS via shadow + persistor, and the cache
    // dropped its (final-output) copy.
    let outputs = s.store.borrow().list_bucket("outputs").0;
    assert_eq!(outputs.len(), 1);
    let meta = s.store.borrow().head(&outputs[0]).0.unwrap();
    assert!(
        !meta.is_shadow(),
        "persistor must have fulfilled the shadow"
    );
    let ofc = s.ofc.as_ref().unwrap();
    let m = ofc.metrics();
    assert_eq!(m.counter("plane.shadows"), 1);
    assert_eq!(m.counter("plane.persists"), 1);
    assert_eq!(
        ofc.trace()
            .phase_count(ofc::core::telemetry::Phase::Persist),
        1
    );
    assert!(!ofc
        .cluster
        .borrow()
        .contains(&ofc::core::cache::rc_key(&outputs[0])));
}

#[test]
fn oom_underprediction_retries_at_booked_and_learns() {
    // Force a bad predictor: a scheduler that always allocates 64 MB.
    struct Tiny;
    impl ofc::faas::Scheduler for Tiny {
        fn route(&mut self, ctx: &ofc::faas::RoutingContext) -> ofc::faas::RoutingDecision {
            ofc::faas::RoutingDecision {
                node: 0,
                sandbox: ctx.warm.first().map(|s| s.sandbox),
                mem_limit: 64 << 20,
                admission: ofc::faas::Admission::admit(),
                overhead: std::time::Duration::ZERO,
            }
        }
    }
    let p = profile("wand_blur").unwrap();
    let mut s = stack(true, 3);
    register(&s, p, 1 << 30);
    s.platform.set_scheduler(Box::new(Tiny));
    // A large image needs far more than 64 MB.
    let input = upload(&s, "big", 3 << 20, 3);
    submit(&mut s, p, &input, 4);
    s.sim.run_until(SimTime::from_secs(600));
    let recs = s.platform.drain_records();
    assert_eq!(recs.len(), 2, "OOM then retry");
    assert_eq!(recs[0].completion, Completion::OomKilled);
    assert_eq!(recs[1].completion, Completion::Success);
    assert_eq!(recs[1].mem_limit, 1 << 30, "retry at the booked size");
    let c = s.platform.counters();
    assert_eq!((c.oom_kills, c.retries), (1, 1));
}

#[test]
fn cache_node_crash_preserves_cached_data() {
    let p = profile("wand_edge").unwrap();
    let mut s = stack(true, 4);
    register(&s, p, 512 << 20);
    let input = upload(&s, "a", 64 << 10, 4);
    // Warm the cache.
    submit(&mut s, p, &input, 5);
    s.sim.run_until(SimTime::from_secs(60));
    let ofc = s.ofc.as_ref().unwrap();
    let key = ofc::core::cache::rc_key(&input);
    let master = ofc.cluster.borrow().master_of(&key).expect("cached");
    // Crash the master's node: replication recovers the object.
    let lost = ofc
        .cluster
        .borrow_mut()
        .crash_node(master, SimTime::from_secs(60));
    assert_eq!(lost.result, 0, "replicated data survives a crash");
    assert!(ofc.cluster.borrow().contains(&key));
    // The next invocation still completes (and can still hit the cache).
    submit(&mut s, p, &input, 6);
    s.sim.run_until(SimTime::from_secs(120));
    let recs = s.platform.drain_records();
    let last = recs.last().unwrap();
    assert_eq!(last.completion, Completion::Success);
    assert!(matches!(
        last.reads_served[0],
        Served::LocalHit | Served::RemoteHit
    ));
}

#[test]
fn immature_models_fall_back_to_booked_memory() {
    let p = profile("wand_rotate").unwrap();
    let mut s = stack(true, 5);
    register(&s, p, 777 << 20);
    let input = upload(&s, "a", 16 << 10, 5);
    submit(&mut s, p, &input, 6);
    s.sim.run_until(SimTime::from_secs(60));
    let recs = s.platform.drain_records();
    // The model is blank: OFC must not guess; the booked amount applies.
    assert_eq!(recs[0].mem_limit, 777 << 20);
}

#[test]
fn mature_models_right_size_sandboxes() {
    let p = profile("wand_rotate").unwrap();
    let mut s = stack(true, 6);
    register(&s, p, 2 << 30);
    // Pre-train to maturity with the function's invocation history.
    {
        let ofc = s.ofc.as_ref().unwrap();
        let key = (s.tenant, FunctionId::from(p.name));
        let mut ml = ofc.ml.borrow_mut();
        for smp in ofc::workloads::datasets::invocation_stream(p, 1500, 77) {
            ml.observe(
                &key,
                ofc::core::ml::Observation {
                    features: smp.features,
                    actual_mem: smp.mem_bytes,
                    el_ratio: 0.8,
                },
            );
        }
        assert!(ml.is_mature(&key), "wand_rotate must mature");
    }
    let input = upload(&s, "a", 64 << 10, 6);
    submit(&mut s, p, &input, 7);
    s.sim.run_until(SimTime::from_secs(60));
    let recs = s.platform.drain_records();
    assert_eq!(recs[0].completion, Completion::Success);
    assert!(
        recs[0].mem_limit < 512 << 20,
        "predicted limit {} should be far below the 2 GB booking",
        recs[0].mem_limit >> 20
    );
    assert!(
        recs[0].mem_limit >= recs[0].mem_actual,
        "and still cover the need"
    );
}

#[test]
fn memory_conservation_on_every_node() {
    // Sandboxes + cache pool + slack never exceed node memory.
    let p = profile("wand_sepia").unwrap();
    let mut s = stack(true, 7);
    register(&s, p, 1 << 30);
    let inputs: Vec<ObjectId> = (0..6)
        .map(|i| upload(&s, &format!("i{i}"), 64 << 10, i))
        .collect();
    for (i, input) in inputs.iter().enumerate() {
        submit(&mut s, p, input, 100 + i as u64);
    }
    s.sim.run_until(SimTime::from_secs(300));
    let ofc = s.ofc.as_ref().unwrap();
    let node_mem = s.platform.config().node_mem;
    for node in 0..s.platform.config().nodes {
        let committed = s.platform.committed_mem(node);
        let pool = ofc.cluster.borrow().node(node).pool_bytes();
        assert!(
            committed + pool <= node_mem,
            "node {node}: sandboxes {committed} + cache {pool} exceed {node_mem}"
        );
    }
}
