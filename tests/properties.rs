//! Property-based tests (proptest) on the core invariants across crates:
//! the cache store's replication and durability, the log cleaner, the
//! object store's version discipline, the classifiers, and the interval
//! arithmetic of the predictor.

use ofc::dtree::c45::{C45Params, C45};
use ofc::dtree::data::{Dataset, Value};
use ofc::dtree::Classifier;
use ofc::objstore::store::ObjectStore;
use ofc::objstore::{ObjectId, Payload};
use ofc::rcstore::cluster::Cluster;
use ofc::rcstore::{ClusterConfig, Key, RcError, Value as RcValue};
use ofc::simtime::SimTime;
use proptest::prelude::*;

const MB: u64 = 1 << 20;

/// Random operations against the cache cluster.
#[derive(Debug, Clone)]
enum Op {
    Write { key: u8, size_kb: u16, node: u8 },
    Read { key: u8, node: u8 },
    MarkClean { key: u8 },
    Evict { key: u8 },
    Migrate { key: u8 },
    Crash { node: u8 },
    Restart { node: u8 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..16u8, 1..2048u16, 0..4u8).prop_map(|(key, size_kb, node)| Op::Write {
            key,
            size_kb,
            node
        }),
        (0..16u8, 0..4u8).prop_map(|(key, node)| Op::Read { key, node }),
        (0..16u8).prop_map(|key| Op::MarkClean { key }),
        (0..16u8).prop_map(|key| Op::Evict { key }),
        (0..16u8).prop_map(|key| Op::Migrate { key }),
        (0..4u8).prop_map(|node| Op::Crash { node }),
        (0..4u8).prop_map(|node| Op::Restart { node }),
    ]
}

fn key_of(k: u8) -> Key {
    Key::from(format!("k{k}"))
}

/// Drives `ops` against a fresh 4-node cluster and checks the §5
/// invariants after every step. Shared by the proptest and the named
/// replays of its committed regression cases.
fn run_cluster_ops(ops: Vec<Op>) -> Result<(), TestCaseError> {
    let mut cluster = Cluster::new(ClusterConfig {
        nodes: 4,
        replication_factor: 2,
        node_pool_bytes: 64 * MB,
        max_object_bytes: 4 * MB,
        segment_bytes: 8 * MB,
        ..ClusterConfig::default()
    });
    // Model state: key -> size of the latest acknowledged write.
    let mut model: std::collections::HashMap<Key, u64> = Default::default();
    let mut now = SimTime::ZERO;

    for op in ops {
        now += std::time::Duration::from_millis(10);
        match op {
            Op::Write { key, size_kb, node } => {
                let key = key_of(key);
                let size = u64::from(size_kb) * 1024;
                let t = cluster.write(usize::from(node), &key, RcValue::synthetic(size), now);
                match t.result {
                    Ok(_) => {
                        model.insert(key, size);
                    }
                    Err(RcError::OutOfMemory { .. }) => {}
                    Err(e) => return Err(TestCaseError::fail(format!("write: {e}"))),
                }
            }
            Op::Read { key, node } => {
                let key = key_of(key);
                let t = cluster.read(usize::from(node), &key, now);
                match (t.result, model.get(&key)) {
                    (Ok((v, _)), Some(&size)) => prop_assert_eq!(v.size(), size),
                    (Ok(_), None) => return Err(TestCaseError::fail("read of never-written key")),
                    (Err(_), _) => {} // evicted/crashed-away: a miss is legal
                }
            }
            Op::MarkClean { key } => {
                cluster.mark_clean(&key_of(key)).ok();
            }
            Op::Evict { key } => {
                let key = key_of(key);
                if cluster.evict(&key).result.is_ok() {
                    model.remove(&key);
                } else if cluster.contains(&key) {
                    // Refusal is only legal for dirty objects.
                    prop_assert_eq!(cluster.is_dirty(&key), Some(true));
                }
            }
            Op::Migrate { key } => {
                let key = key_of(key);
                let before = model.get(&key).copied();
                if cluster.migrate_by_promotion(&key, now).result.is_ok() {
                    // Migration must not lose or change the object.
                    let t = cluster.read(0, &key, now);
                    let v = t
                        .result
                        .map_err(|e| TestCaseError::fail(format!("post-migrate read: {e}")))?;
                    prop_assert_eq!(Some(v.0.size()), before);
                }
            }
            Op::Crash { node } => {
                let lost = cluster.crash_node(usize::from(node), now);
                // With replication factor 2 a single crash loses nothing;
                // only keys that already lost replicas to earlier crashes
                // may vanish.
                for _ in 0..lost.result {
                    // Remove whatever keys disappeared from the tablet.
                    model.retain(|k, _| cluster.contains(k));
                }
                model.retain(|k, _| cluster.contains(k));
            }
            Op::Restart { node } => cluster.restart_node(usize::from(node), now),
        }
        // Global invariants after every step.
        let up_nodes = (0..4).filter(|&n| cluster.node(n).is_up()).count();
        for (key, &size) in &model {
            prop_assert!(cluster.contains(key), "{key} lost without a crash");
            let master = cluster.master_of(key).expect("contained");
            prop_assert!(cluster.node(master).is_up(), "master of {key} is down");
            let obj = cluster
                .node(master)
                .peek_master(key)
                .expect("tablet consistent");
            prop_assert_eq!(obj.value.size(), size);
            if up_nodes >= 3 {
                prop_assert!(
                    cluster.live_replicas(key) >= 1,
                    "{key} unreplicated with {up_nodes} nodes up"
                );
            }
        }
    }
    Ok(())
}

/// Replay of the committed `tests/properties.proptest-regressions` case
/// `cc7de25d…` (shrunken): two crashes empty the replica set of node 0's
/// tablet range, a write lands while only two nodes are up, then the
/// master crashes before any restart. The fix keeps the acknowledged
/// write readable (or consistently absent from the tablet) — never a
/// stale tablet entry pointing at a dead master.
#[test]
fn regression_write_between_crashes_keeps_tablet_consistent() {
    run_cluster_ops(vec![
        Op::Crash { node: 0 },
        Op::Crash { node: 2 },
        Op::Write {
            key: 0,
            size_kb: 1,
            node: 0,
        },
        Op::Crash { node: 1 },
        Op::Restart { node: 0 },
        Op::Restart { node: 1 },
    ])
    .unwrap();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Under arbitrary writes, reads, evictions, migrations, crashes, and
    /// restarts: every cached object keeps its size, its replication never
    /// silently drops while enough nodes are up, and reads after writes
    /// observe the latest value (single-key linearizability).
    #[test]
    fn cluster_invariants_under_chaos(ops in prop::collection::vec(op_strategy(), 1..80)) {
        run_cluster_ops(ops)?;
    }

    /// The object store's version counters are monotone and
    /// `persisted_version <= version` always holds; fulfillments apply
    /// exactly in order.
    #[test]
    fn objstore_version_discipline(ops in prop::collection::vec((0..3u8, 0..4u8, 1..512u16), 1..60)) {
        let mut store = ObjectStore::new(ofc::objstore::latency::LatencyModel::instant());
        let mut last_version: std::collections::HashMap<u8, u64> = Default::default();
        for (kind, key, size) in ops {
            let id = ObjectId::new("b", format!("k{key}"));
            let size = u64::from(size) * 1024;
            match kind {
                0 => {
                    let (v, _) = store.put(&id, Payload::Synthetic(size), Default::default(), false);
                    let prev = last_version.insert(key, v).unwrap_or(0);
                    prop_assert!(v > prev, "version must grow");
                }
                1 => {
                    let (v, _) = store.put_shadow(&id, size);
                    let prev = last_version.insert(key, v).unwrap_or(0);
                    prop_assert!(v > prev);
                }
                _ => {
                    // Fulfill the oldest pending version, if a shadow exists.
                    if let Ok(meta) = store.head(&id).0 {
                        if meta.is_shadow() {
                            let next = meta.persisted_version + 1;
                            let (res, _) = store.fulfill_shadow(&id, next, Payload::Synthetic(size));
                            prop_assert!(res.is_ok());
                        }
                    }
                }
            }
            if let Ok(meta) = store.head(&id).0 {
                prop_assert!(meta.persisted_version <= meta.version);
            }
        }
    }

    /// J48 predictions always fall inside the training label set, and
    /// training is deterministic.
    #[test]
    fn j48_predictions_stay_in_range(
        rows in prop::collection::vec((0.0f64..100.0, 0..4u32), 10..120),
        probe in 0.0f64..100.0,
    ) {
        let mut ds = Dataset::builder()
            .numeric_attr("x")
            .classes(["a", "b", "c", "d"])
            .build();
        let mut seen = std::collections::HashSet::new();
        for (x, label) in &rows {
            ds.push(vec![Value::Num(*x)], *label);
            seen.insert(*label);
        }
        let t1 = C45::train(&ds, &C45Params::default());
        let t2 = C45::train(&ds, &C45Params::default());
        let p = t1.predict(&[Value::Num(probe)]);
        prop_assert!(seen.contains(&p), "predicted unseen class {p}");
        prop_assert_eq!(p, t2.predict(&[Value::Num(probe)]), "training not deterministic");
    }

    /// Interval arithmetic of the predictor: allocations always cover the
    /// raw predicted interval, never exceed the range, and are monotone.
    #[test]
    fn interval_allocation_sound(raw in 0u32..128, mem in 0u64..(3 << 30)) {
        let cfg = ofc::core::ml::MlConfig::default();
        let label = cfg.interval_of(mem);
        prop_assert!(u64::from(label) * cfg.interval_bytes <= mem || label == 127);
        let alloc = cfg.allocation_for(raw);
        prop_assert!(alloc <= cfg.range_bytes);
        // The allocation covers the upper bound of the raw interval.
        prop_assert!(alloc >= (u64::from(raw) + 1).min(128) * cfg.interval_bytes);
        if raw < 127 {
            prop_assert!(cfg.allocation_for(raw + 1) >= alloc);
        }
    }

    /// The IMOC never exceeds its capacity and keeps hit accounting sane.
    #[test]
    fn imoc_capacity_invariant(ops in prop::collection::vec((0..12u8, 1..200u16), 1..80)) {
        let mut imoc = ofc::objstore::imoc::Imoc::new(
            ofc::objstore::latency::LatencyModel::instant(),
            256 * 1024,
        );
        for (key, kb) in ops {
            let id = ObjectId::new("b", format!("k{key}"));
            let _ = imoc.put(&id, Payload::Synthetic(u64::from(kb) * 1024));
            prop_assert!(imoc.used() <= imoc.capacity());
        }
        let (hits, misses, _) = imoc.counters();
        prop_assert_eq!(hits + misses, 0, "no gets were issued");
    }

    /// The shard router is a total function, stable per seed, and — for
    /// populations of at least 1k keys — balanced within 2x of the ideal
    /// per-shard share (DESIGN.md §11).
    #[test]
    fn shard_router_total_stable_and_balanced(
        seed in any::<u64>(),
        shards in 1usize..12,
        salt in 0u32..1000,
    ) {
        use ofc::rcstore::shard::ShardRouter;
        let a = ShardRouter::new(shards, seed);
        let b = ShardRouter::new(shards, seed);
        const KEYS: usize = 2048;
        let mut counts = vec![0usize; shards];
        for i in 0..KEYS {
            let key = Key::from(format!("obj/{salt}/{i}"));
            let s = a.shard_of(&key);
            prop_assert!(s < shards, "shard {s} out of range");
            prop_assert_eq!(s, b.shard_of(&key), "mapping not stable per seed");
            counts[s] += 1;
        }
        let ideal = KEYS as f64 / shards as f64;
        for (s, &c) in counts.iter().enumerate() {
            prop_assert!(
                (c as f64) <= ideal * 2.0,
                "shard {s} holds {c} of {KEYS} keys (ideal {ideal:.0})"
            );
        }
    }

    /// Batched replication never reorders appends within a key: the
    /// coalescing buffer keeps exactly the latest enqueued value per
    /// (shard, backup, key), so a flush can only apply writes in (or
    /// newer than) acknowledgment order — never resurrect an older value.
    #[test]
    fn replication_batching_preserves_per_key_order(
        writes in prop::collection::vec((0..8u8, 0..4u8, 1u64..512), 1..100),
    ) {
        use ofc::rcstore::shard::ReplicationBatcher;
        let mut batcher = ReplicationBatcher::new();
        // Model: the latest value enqueued per (shard, backup, key).
        let mut latest: std::collections::BTreeMap<(usize, usize, Key), u64> = Default::default();
        for (key, backup, size) in writes {
            let key = key_of(key);
            let shard = usize::from(key.as_bytes()[1] - b'0') % 4;
            let backup = usize::from(backup);
            batcher.enqueue(shard, backup, key, RcValue::synthetic(size));
            latest.insert((shard, backup, key), size);
        }
        for ((shard, backup), entries) in batcher.drain() {
            let mut seen = std::collections::HashSet::new();
            for (key, value) in entries {
                prop_assert!(seen.insert(key), "duplicate {key} in one buffer");
                let want = latest.get(&(shard, backup, key));
                prop_assert_eq!(
                    want.copied(),
                    Some(value.size()),
                    "buffer holds a stale value for {}", key
                );
            }
        }
    }
}
