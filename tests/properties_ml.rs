//! Property-based tests of the ML stack and the memory-arbitration
//! invariants.

use ofc::core::agent::{AgentConfig, CacheAgent};
use ofc::core::ml::{MlConfig, MlEngine, Observation};
use ofc::dtree::data::{AttrKind, Dataset, Value};
use ofc::dtree::hoeffding::{HoeffdingParams, HoeffdingTree};
use ofc::dtree::Classifier;
use ofc::faas::{FunctionId, MemoryBroker, TenantId};
use ofc::objstore::store::ObjectStore;
use ofc::rcstore::cluster::Cluster;
use ofc::rcstore::ClusterConfig;
use ofc::simtime::Sim;
use proptest::prelude::*;
use std::cell::RefCell;
use std::rc::Rc;

const MB: u64 = 1 << 20;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// A Hoeffding tree absorbs any stream without panicking, and its
    /// predictions always fall in the label range.
    #[test]
    fn hoeffding_stream_safety(
        stream in prop::collection::vec((0.0f64..100.0, -50.0f64..50.0, 0..3u32), 20..400),
    ) {
        let mut tree = HoeffdingTree::new(
            vec![AttrKind::Numeric, AttrKind::Numeric],
            3,
            HoeffdingParams::default(),
        );
        for (x, y, label) in &stream {
            tree.learn(&[Value::Num(*x), Value::Num(*y)], *label);
        }
        prop_assert_eq!(tree.instances_seen(), stream.len() as u64);
        let p = tree.predict(&[Value::Num(12.0), Value::Num(-3.0)]);
        prop_assert!(p < 3);
        let d = tree.distribution(&[Value::Num(0.0), Value::Num(0.0)]);
        prop_assert!((d.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    /// C4.5 never predicts worse than the majority class on its own
    /// training data (a weak but universal learning bound).
    #[test]
    fn c45_beats_or_ties_majority_on_training_data(
        rows in prop::collection::vec((0.0f64..10.0, 0..3u32), 12..150),
    ) {
        use ofc::dtree::c45::{C45Params, C45};
        let mut ds = Dataset::builder()
            .numeric_attr("x")
            .classes(["a", "b", "c"])
            .build();
        for (x, label) in &rows {
            ds.push(vec![Value::Num(*x)], *label);
        }
        let tree = C45::train(&ds, &C45Params::default());
        let correct = ds
            .rows()
            .iter()
            .filter(|r| tree.predict(&r.values) == r.label)
            .count();
        let majority = ds.majority_class();
        let baseline = ds.rows().iter().filter(|r| r.label == majority).count();
        prop_assert!(
            correct >= baseline,
            "tree {correct} < majority baseline {baseline}"
        );
    }

    /// The MlEngine never emits an allocation below the raw prediction's
    /// interval upper bound, never exceeds 2 GB, and only predicts once
    /// mature.
    #[test]
    fn engine_allocations_are_sound(
        observations in prop::collection::vec((0.0f64..50.0, 32u64..900), 1..250),
        probe in 0.0f64..50.0,
    ) {
        let mut ml = MlEngine::new(MlConfig::default());
        let key = (TenantId::from("t"), FunctionId::from("f"));
        ml.register(
            key,
            vec![ofc::dtree::data::Attribute {
                name: "x".into(),
                kind: AttrKind::Numeric,
            }],
        );
        for (x, mem_mb) in &observations {
            ml.observe(
                &key,
                Observation {
                    features: vec![Value::Num(*x)],
                    actual_mem: mem_mb * MB,
                    el_ratio: 0.7,
                },
            );
        }
        let p = ml.predict(&key, &[Value::Num(probe)]);
        if let Some(alloc) = p.mem_bytes {
            prop_assert!(ml.is_mature(&key), "allocation from an immature model");
            let raw = p.raw_interval.expect("raw accompanies allocation");
            prop_assert!(alloc <= 2 << 30);
            prop_assert!(alloc >= (u64::from(raw) + 1) * (16 * MB));
        }
        if ml.is_mature(&key) {
            prop_assert!(observations.len() >= 100, "matured too early");
        }
    }

    /// Memory conservation at the broker: after any sequence of reserves
    /// and releases, `committed + cache pool <= node memory` on the touched
    /// node, and a granted reserve is never beyond capacity.
    #[test]
    fn agent_conserves_node_memory(
        ops in prop::collection::vec((any::<bool>(), 1u64..60), 1..60),
    ) {
        let total = 4u64 << 30;
        let cluster = Rc::new(RefCell::new(Cluster::new(ClusterConfig {
            nodes: 2,
            replication_factor: 1,
            node_pool_bytes: total - (100 * MB),
            max_object_bytes: 10 * MB,
            segment_bytes: 16 * MB,
            ..ClusterConfig::default()
        })));
        let store = Rc::new(RefCell::new(ObjectStore::swift()));
        let agent = CacheAgent::new(
            AgentConfig::default(),
            Rc::clone(&cluster),
            store,
            &ofc::core::telemetry::Telemetry::standalone(),
        );
        let mut sim = Sim::new(0);
        let mut committed: u64 = 0;
        for (grow, chunk_64mb) in ops {
            let delta = chunk_64mb * 64 * MB;
            let mut broker = agent.clone();
            if grow {
                let after = committed + delta;
                if broker.reserve(&mut sim, 0, delta, after, total).is_some() {
                    prop_assert!(after <= total, "granted beyond capacity");
                    committed = after;
                }
            } else {
                let after = committed.saturating_sub(delta);
                broker.release(&mut sim, 0, delta, after, total);
                committed = after;
            }
            let pool = cluster.borrow().node(0).pool_bytes();
            prop_assert!(
                committed + pool <= total,
                "conservation violated: {committed} + {pool} > {total}"
            );
        }
    }
}
