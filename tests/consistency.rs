//! Consistency integration tests: the §6.2 guarantees — shadow objects,
//! persistor ordering, webhook paths for external clients — observed
//! through the full stack.

use ofc::core::cache::{rc_key, OfcPlane, PlaneConfig};
use ofc::faas::{DataPlane, ObjectWrite};
use ofc::objstore::store::ObjectStore;
use ofc::objstore::{ObjectId, Payload};
use ofc::rcstore::cluster::Cluster;
use ofc::rcstore::ClusterConfig;
use ofc::simtime::{Sim, SimTime};
use std::cell::RefCell;
use std::rc::Rc;

const MB: u64 = 1 << 20;

fn setup() -> (OfcPlane, Rc<RefCell<Cluster>>, Rc<RefCell<ObjectStore>>) {
    let cluster = Rc::new(RefCell::new(Cluster::new(ClusterConfig {
        nodes: 3,
        replication_factor: 1,
        node_pool_bytes: 512 * MB,
        max_object_bytes: 10 * MB,
        segment_bytes: 16 * MB,
        ..ClusterConfig::default()
    })));
    let store = Rc::new(RefCell::new(ObjectStore::swift()));
    let plane = OfcPlane::new(
        PlaneConfig::default(),
        Rc::clone(&cluster),
        Rc::clone(&store),
        &ofc::core::telemetry::Telemetry::standalone(),
    );
    (plane, cluster, store)
}

fn write(plane: &mut OfcPlane, sim: &mut Sim, key: &str, size: u64) -> ObjectId {
    let id = ObjectId::new("out", key);
    plane.write(
        sim,
        0,
        &ObjectWrite {
            id,
            size,
            is_final: true,
        },
        ofc::faas::Admission::admit(),
        None,
    );
    id
}

#[test]
fn successive_updates_persist_in_version_order() {
    let (mut plane, _cluster, store) = setup();
    let mut sim = Sim::new(0);
    // Three rapid updates to the same object: three shadows, one pending
    // fulfillment at a time, versions must land 1, 2, 3.
    let id = write(&mut plane, &mut sim, "obj", 100 * 1024);
    sim.run_until(SimTime::from_secs(5));
    write(&mut plane, &mut sim, "obj", 200 * 1024);
    sim.run_until(SimTime::from_secs(10));
    write(&mut plane, &mut sim, "obj", 300 * 1024);
    sim.run();
    let (meta, payload) = store.borrow_mut().get(&id).0.expect("persisted");
    assert_eq!(meta.version, 3);
    assert_eq!(meta.persisted_version, 3);
    assert_eq!(payload.len(), 300 * 1024);
}

#[test]
fn external_reader_never_sees_a_stale_version() {
    let (mut plane, _cluster, store) = setup();
    let mut sim = Sim::new(0);
    let id = write(&mut plane, &mut sim, "fresh", 512 * 1024);
    // Before the persistor fires, the RSDS only has a shadow…
    assert!(store.borrow().head(&id).0.unwrap().is_shadow());
    // …but an external read through the webhook boosts the persistor and
    // returns the latest payload.
    let (res, latency) = plane.external_read(&id);
    assert_eq!(res.unwrap().len(), 512 * 1024);
    // The reader waited for the boosted upload (longer than a plain GET).
    assert!(latency > store.borrow().latency().read(512 * 1024));
}

#[test]
fn external_write_invalidates_and_next_function_read_refetches() {
    let (mut plane, cluster, store) = setup();
    let mut sim = Sim::new(0);
    // A function-cached input object.
    let id = ObjectId::new("in", "shared");
    store.borrow_mut().put(
        &id,
        Payload::Synthetic(64 * 1024),
        Default::default(),
        false,
    );
    plane.read(
        &mut sim,
        0,
        &ofc::faas::ObjectRef {
            id,
            size: 64 * 1024,
        },
        ofc::faas::Admission::admit(),
    );
    assert!(cluster.borrow().contains(&rc_key(&id)));
    // An external client overwrites it directly in the RSDS.
    plane.external_write(&id, Payload::Synthetic(128 * 1024));
    assert!(
        !cluster.borrow().contains(&rc_key(&id)),
        "stale cache copy must be gone"
    );
    // The next function read refetches the new version and re-caches it.
    let out = plane.read(
        &mut sim,
        1,
        &ofc::faas::ObjectRef {
            id,
            size: 128 * 1024,
        },
        ofc::faas::Admission::admit(),
    );
    assert_eq!(out.served, ofc::faas::Served::Miss);
    let (meta, payload) = store.borrow_mut().get(&id).0.unwrap();
    assert_eq!(meta.version, 2);
    assert_eq!(payload.len(), 128 * 1024);
}

#[test]
fn external_overwrite_of_pending_object_wins() {
    let (mut plane, cluster, store) = setup();
    let mut sim = Sim::new(0);
    // A cached write whose persistor has not fired…
    let id = write(&mut plane, &mut sim, "race", 100 * 1024);
    assert!(plane.persistence().borrow().is_pending(&rc_key(&id)));
    // …is overwritten externally. The pending fulfillment is cancelled and
    // must NOT clobber the external version afterwards.
    plane.external_write(&id, Payload::Synthetic(999));
    sim.run(); // the stale persistor event fires and finds nothing pending
    let (meta, payload) = store.borrow_mut().get(&id).0.unwrap();
    assert_eq!(payload.len(), 999, "the external write must win");
    assert_eq!(meta.persisted_version, meta.version);
    assert!(!cluster.borrow().contains(&rc_key(&id)));
}

#[test]
fn reclamation_writeback_satisfies_external_reader() {
    let (mut plane, cluster, store) = setup();
    let mut sim = Sim::new(0);
    let id = write(&mut plane, &mut sim, "evictme", 256 * 1024);
    let key = rc_key(&id);
    // Reclamation-style write-back through the persistence hook (the cache
    // agent uses exactly this path).
    assert!(plane.persistence().borrow_mut().persist_now(&key));
    let meta = store.borrow().head(&id).0.unwrap();
    assert!(!meta.is_shadow());
    // Being a final output, the object also left the cache.
    assert!(!cluster.borrow().contains(&key));
    // The pending entry is gone; a second write-back is a no-op.
    assert!(!plane.persistence().borrow_mut().persist_now(&key));
}
