//! Multi-tenant load with FaaSLoad: eight tenants (six image functions +
//! two analytics pipelines) fire for ten simulated minutes; the example
//! prints the cache growing and shrinking as sandboxes claim and release
//! memory (the Figure 10 dynamic).
//!
//! Run with: `cargo run --example multi_tenant`

use ofc::core::cache::plane_hit_ratio;
use ofc::core::ofc::Ofc;
use ofc::faas::baselines::NoopPlane;
use ofc::faas::platform::Platform;
use ofc::faas::registry::Registry;
use ofc::faas::{ArgValue, Args, FunctionId, PlatformConfig, TenantId};
use ofc::objstore::store::ObjectStore;
use ofc::simtime::{Sim, SimTime};
use ofc::workloads::catalog::Catalog;
use ofc::workloads::faasload::{FaasLoad, FaasLoadConfig, TenantProfile};
use std::cell::RefCell;
use std::rc::Rc;
use std::time::Duration;

fn main() {
    let store = Rc::new(RefCell::new(ObjectStore::swift()));
    let catalog = Catalog::new();
    let platform = Platform::build(
        PlatformConfig::default(),
        Registry::new(),
        Box::new(NoopPlane),
    );

    // OFC with a feature extractor covering both the single-stage profiles
    // and the pipeline stage functions.
    let features = {
        let catalog = catalog.clone();
        Rc::new(move |_t: &TenantId, f: &FunctionId, args: &Args| {
            if let Some(p) = ofc::workloads::multimedia::profile(f.as_ref()) {
                let input = args.values().find_map(|v| match v {
                    ArgValue::Obj(id) => Some(*id),
                    _ => None,
                })?;
                return Some(p.features(&catalog.get(&input)?, args));
            }
            ofc::workloads::pipelines::stage_profile(f.as_ref())
                .map(|sp| sp.features(args, &catalog))
        })
    };
    let ofc = Ofc::builder(&platform)
        .store(Rc::clone(&store))
        .features(features)
        .build();
    let mut sim = Sim::new(99);
    ofc.start(&mut sim);

    // Eight tenants with "normal" memory sizing (1.7x their observed max),
    // exponential arrivals with a one-minute mean.
    let load = FaasLoad::new(
        FaasLoadConfig {
            duration: Duration::from_secs(10 * 60),
            inputs_per_tenant: 12,
            seed: 99,
        },
        FaasLoad::paper_macro(TenantProfile::Normal)
            .tenants()
            .to_vec(),
    );
    let prepared = load.install(&mut sim, &platform, &store, &catalog);
    for pt in &prepared {
        match ofc::workloads::multimedia::profile(&pt.function) {
            Some(p) => ofc.register_function(pt.tenant.as_ref(), p.name, p.feature_schema()),
            None => {
                // Pipeline tenant: register every stage function's schema.
                for sp in &ofc::workloads::pipelines::STAGE_PROFILES {
                    ofc.register_function(pt.tenant.as_ref(), sp.name, sp.feature_schema());
                }
            }
        }
        println!(
            "tenant {:24} books {:5} MB, {} invocations scheduled",
            pt.tenant.as_ref(),
            pt.booked_mem >> 20,
            pt.invocations
        );
    }

    sim.run_until(SimTime::from_secs(11 * 60));

    // Report: per-tenant completions and the cache-size time series.
    let records = platform.drain_records();
    println!("\n{} invocations completed", records.len());
    let m = ofc.metrics();
    println!("\ncache size over time:");
    let points = m
        .gauge_series("agent.cache_size_bytes")
        .map(|s| s.downsample(12))
        .unwrap_or_default();
    let max = points.iter().map(|&(_, v)| v).fold(1.0, f64::max);
    for (t, v) in points {
        let bar = "#".repeat((v / max * 40.0) as usize);
        println!(
            "  {:>5.1} min | {bar} {:.1} GB",
            t.as_secs_f64() / 60.0,
            v / (1u64 << 30) as f64
        );
    }
    println!(
        "\nhit ratio {:.1}%  |  scale-ups {}  scale-downs {}  |  {} sandbox resizes absorbed",
        100.0 * plane_hit_ratio(&m),
        m.counter("agent.scale_ups"),
        m.counter("agent.scale_downs_plain")
            + m.counter("agent.scale_downs_migration")
            + m.counter("agent.scale_downs_eviction"),
        platform.counters().resizes,
    );
}
