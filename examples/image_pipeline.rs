//! Pipelines under OFC: run the ServerlessBench image-processing sequence
//! and a MapReduce word count against `OWK-Swift` and OFC, and show how the
//! cache absorbs intermediate data (§6.3: intermediates never touch the
//! object store and are dropped when the pipeline completes).
//!
//! Run with: `cargo run --example image_pipeline`

use ofc::core::ofc::Ofc;
use ofc::faas::baselines::{DirectPlane, NoopPlane};
use ofc::faas::platform::{Platform, PlatformHandle};
use ofc::faas::registry::Registry;
use ofc::faas::{ObjectRef, PlatformConfig, TenantId};
use ofc::objstore::store::ObjectStore;
use ofc::objstore::{ObjectId, Payload};
use ofc::simtime::{Sim, SimTime};
use ofc::workloads::catalog::{gen_image_with_bytes, gen_text, Catalog};
use ofc::workloads::pipelines::{register_stage_functions, ScatterGather, Sequence};
use rand::SeedableRng;
use std::cell::RefCell;
use std::rc::Rc;

struct Setup {
    sim: Sim,
    platform: PlatformHandle,
    store: Rc<RefCell<ObjectStore>>,
    catalog: Catalog,
    ofc: Option<Ofc>,
}

fn build(with_ofc: bool) -> Setup {
    let store = Rc::new(RefCell::new(ObjectStore::swift()));
    let catalog = Catalog::new();
    let mut sim = Sim::new(7);
    let (platform, ofc) = if with_ofc {
        let platform = Platform::build(
            PlatformConfig::default(),
            Registry::new(),
            Box::new(NoopPlane),
        );
        // Stage functions: features are the input volume and fan-out.
        let features = {
            let catalog = catalog.clone();
            Rc::new(
                move |_t: &TenantId, f: &ofc::faas::FunctionId, args: &ofc::faas::Args| {
                    ofc::workloads::pipelines::stage_profile(f.as_ref())
                        .map(|sp| sp.features(args, &catalog))
                },
            )
        };
        let ofc = Ofc::builder(&platform)
            .store(Rc::clone(&store))
            .features(features)
            .build();
        ofc.start(&mut sim);
        (platform, Some(ofc))
    } else {
        let platform = Platform::build(
            PlatformConfig::default(),
            Registry::new(),
            Box::new(DirectPlane::new(Rc::clone(&store))),
        );
        (platform, None)
    };
    Setup {
        sim,
        platform,
        store,
        catalog,
        ofc,
    }
}

fn upload(s: &Setup, key: &str, meta: ofc::workloads::catalog::MediaMeta) -> ObjectRef {
    let id = ObjectId::new("inputs", key);
    s.store
        .borrow_mut()
        .put(&id, Payload::Synthetic(meta.bytes), meta.tags(), false);
    let size = meta.bytes;
    s.catalog.insert(id, meta);
    ObjectRef { id, size }
}

fn run_both(
    label: &str,
    driver_for: impl Fn(&Setup) -> Rc<dyn ofc::faas::platform::PipelineDriver>,
) {
    let mut walls = Vec::new();
    for with_ofc in [false, true] {
        let mut s = build(with_ofc);
        let tenant = TenantId::from("pipelines");
        register_stage_functions(&s.platform, &s.catalog, &tenant, 512 << 20);
        if let Some(ofc) = &s.ofc {
            for sp in &ofc::workloads::pipelines::STAGE_PROFILES {
                ofc.register_function("pipelines", sp.name, sp.feature_schema());
            }
        }
        let driver = driver_for(&s);
        s.platform.submit_pipeline(&mut s.sim, driver, 1);
        s.sim.run_until(SimTime::from_secs(3600));
        let pipes = s.platform.drain_pipeline_records();
        assert!(!pipes[0].failed);
        let wall = pipes[0].end.saturating_since(pipes[0].start).as_secs_f64();
        walls.push(wall);
        if let Some(ofc) = &s.ofc {
            let m = ofc.metrics();
            println!(
                "  OFC run: {:5.2}s  ({} intermediates kept out of the RSDS, {:.1} MB ephemeral, dropped at pipeline end)",
                wall,
                m.counter("plane.intermediates_dropped"),
                m.counter("plane.ephemeral_bytes") as f64 / (1 << 20) as f64
            );
        } else {
            println!("  OWK-Swift run: {wall:5.2}s");
        }
    }
    println!(
        "  -> OFC improves {label} by {:.0}%\n",
        100.0 * (1.0 - walls[1] / walls[0])
    );
}

fn main() {
    println!("ServerlessBench image-processing pipeline (1 MB image):");
    run_both("image_processing", |s| {
        // ofc-lint: allow(rng) reason=fixed demo seed so the example prints stable numbers
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(2);
        let input = upload(s, "photo.png", gen_image_with_bytes(1 << 20, &mut rng));
        Rc::new(Sequence::image_processing(
            TenantId::from("pipelines"),
            input,
        ))
    });

    println!("MapReduce word count (20 MB text, 8 mappers):");
    run_both("map_reduce", |s| {
        // ofc-lint: allow(rng) reason=fixed demo seed so the example prints stable numbers
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(3);
        let input = upload(s, "corpus.txt", gen_text(Some(20 << 20), &mut rng));
        Rc::new(ScatterGather::word_count(
            TenantId::from("pipelines"),
            input,
            8,
        ))
    });
}
