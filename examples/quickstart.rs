//! Quickstart: install OFC onto an OpenWhisk-model platform, run an image
//! function twice, and watch the second invocation hit the cache.
//!
//! Run with: `cargo run --example quickstart`

use ofc::core::cache::plane_hit_ratio;
use ofc::core::ofc::Ofc;
use ofc::faas::baselines::NoopPlane;
use ofc::faas::platform::Platform;
use ofc::faas::registry::{FunctionSpec, Registry};
use ofc::faas::{ArgValue, Args, FunctionId, InvocationRequest, PlatformConfig, TenantId};
use ofc::objstore::store::ObjectStore;
use ofc::objstore::{ObjectId, Payload};
use ofc::simtime::{Sim, SimTime};
use ofc::workloads::catalog::{gen_image_with_bytes, Catalog};
use ofc::workloads::multimedia::{profile, MultimediaModel};
use rand::SeedableRng;
use std::cell::RefCell;
use std::rc::Rc;

fn main() {
    // 1. The substrate: a 4-worker OpenWhisk-model platform and a
    //    Swift-model object store.
    let store = Rc::new(RefCell::new(ObjectStore::swift()));
    let platform = Platform::build(
        PlatformConfig::default(),
        Registry::new(),
        Box::new(NoopPlane),
    );

    // 2. Install OFC: Predictor, CacheAgent, Proxy/rclib, Monitor, and the
    //    RAMCloud-model cache cluster all wire into the platform's seams.
    let catalog = Catalog::new();
    let features = {
        let catalog = catalog.clone();
        let p = profile("wand_edge").expect("known function");
        Rc::new(move |_t: &TenantId, _f: &FunctionId, args: &Args| {
            let input = args.values().find_map(|v| match v {
                ArgValue::Obj(id) => Some(*id),
                _ => None,
            })?;
            Some(p.features(&catalog.get(&input)?, args))
        })
    };
    let ofc = Ofc::builder(&platform)
        .store(Rc::clone(&store))
        .features(features)
        .build();
    let mut sim = Sim::new(42);
    ofc.start(&mut sim);

    // 3. Register a function: tenant "alice" books 512 MB for wand_edge.
    let tenant = TenantId::from("alice");
    let edge = profile("wand_edge").expect("known function");
    platform.register(FunctionSpec {
        id: FunctionId::from(edge.name),
        tenant,
        booked_mem: 512 << 20,
        model: Rc::new(MultimediaModel::new(edge, catalog.clone())),
    });
    ofc.register_function("alice", edge.name, edge.feature_schema());

    // 4. Upload an input image (16 kB) to the object store; feature tags
    //    are extracted at creation time.
    // ofc-lint: allow(rng) reason=fixed demo seed so the example prints stable numbers
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
    let img = gen_image_with_bytes(16 << 10, &mut rng);
    let input = ObjectId::new("alice-images", "photo.jpg");
    store
        .borrow_mut()
        .put(&input, Payload::Synthetic(img.bytes), img.tags(), false);
    catalog.insert(input, img);

    // 5. Invoke twice: the first read misses (and fills the cache); the
    //    second hits locally.
    let submit = |sim: &mut Sim, seed: u64| {
        let mut args = Args::new();
        args.insert("input".into(), ArgValue::Obj(input));
        args.insert("radius".into(), ArgValue::Num(3.0));
        platform.submit(
            sim,
            InvocationRequest {
                function: FunctionId::from(edge.name),
                tenant,
                args,
                seed,
                pipeline: None,
            },
        );
    };
    submit(&mut sim, 1);
    sim.run_until(SimTime::from_secs(30));
    submit(&mut sim, 2);
    sim.run_until(SimTime::from_secs(60));

    // 6. Inspect the records and the cache telemetry.
    let records = platform.drain_records();
    println!("invocation  E        T        L        total    reads");
    for r in &records {
        println!(
            "{:10}  {:6.1}ms {:6.1}ms {:6.1}ms {:6.1}ms  {:?}",
            r.id,
            r.e_time.as_secs_f64() * 1e3,
            r.t_time.as_secs_f64() * 1e3,
            r.l_time.as_secs_f64() * 1e3,
            r.etl().as_secs_f64() * 1e3,
            r.reads_served,
        );
    }
    let m = ofc.metrics();
    println!(
        "\ncache: {} local hit(s), {} miss(es), {} fill(s), {} shadow write(s), hit ratio {:.0}%",
        m.counter("plane.local_hits"),
        m.counter("plane.misses"),
        m.counter("plane.fills"),
        m.counter("plane.shadows"),
        100.0 * plane_hit_ratio(&m)
    );
    assert!(
        records[1].etl() < records[0].etl(),
        "second run must be faster"
    );
    println!(
        "second invocation ran {:.1}x faster thanks to the cache",
        records[0].etl().as_secs_f64() / records[1].etl().as_secs_f64()
    );
}
