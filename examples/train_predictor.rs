//! The ML side standalone: train OFC's J48 memory predictor for a function,
//! watch it mature, and retrain in the background off the critical path
//! (the deployment-shaped [`BackgroundTrainer`]).
//!
//! Run with: `cargo run --example train_predictor`

use ofc::core::ml::{MlConfig, MlEngine, Observation};
use ofc::core::trainer::BackgroundTrainer;
use ofc::dtree::c45::C45Params;
use ofc::dtree::Classifier;
use ofc::faas::{FunctionId, TenantId};
use ofc::workloads::datasets::{invocation_stream, memory_dataset};
use ofc::workloads::multimedia::profile;

fn main() {
    let p = profile("wand_resize").expect("known function");
    let key = (TenantId::from("demo"), FunctionId::from(p.name));

    // 1. Online learning with the maturation criterion (§5.3): the engine
    //    refuses to size sandboxes until 90% of its predictions are
    //    exact-or-over and half of the underpredictions are within one
    //    16 MB interval.
    let mut ml = MlEngine::new(MlConfig::default());
    ml.register(key, p.feature_schema());
    let mut matured_at = None;
    for (i, s) in invocation_stream(p, 2000, 5).into_iter().enumerate() {
        ml.observe(
            &key,
            Observation {
                features: s.features,
                actual_mem: s.mem_bytes,
                el_ratio: if s.cache_benefit { 0.9 } else { 0.1 },
            },
        );
        if ml.is_mature(&key) {
            matured_at = Some(i + 1);
            break;
        }
    }
    match matured_at {
        Some(n) => println!("memory model matured after {n} invocations"),
        None => println!("memory model did not mature within 2000 invocations"),
    }
    let (eo, under1) = ml.window_stats(&key).expect("window populated");
    println!(
        "maturation window: {:.1}% exact-or-over, {:.1}% of unders within one interval",
        eo * 100.0,
        under1 * 100.0
    );

    // 2. Use the predictor: the allocation is the upper bound of the next
    //    greater interval — covered, but far below a 2 GB booking.
    let sample = &invocation_stream(p, 1, 123)[0];
    let pred = ml.predict(&key, &sample.features);
    println!(
        "sample invocation: actual need {:4} MB, OFC allocates {:4} MB (tenant booked 2048 MB)",
        sample.mem_bytes >> 20,
        pred.mem_bytes.expect("mature model") >> 20
    );

    // 3. Retrain in the background: the ModelTrainer runs off the critical
    //    path on a worker thread; the Predictor reads published models
    //    lock-free.
    let trainer = BackgroundTrainer::spawn(C45Params::default());
    let dataset = memory_dataset(p, 800, 16 << 20, 9);
    trainer.submit("demo/wand_resize", dataset.clone());
    // ... the invocation path keeps serving predictions meanwhile ...
    let model = loop {
        if let Some(m) = trainer.model("demo/wand_resize") {
            break m;
        }
        std::thread::sleep(std::time::Duration::from_millis(2));
    };
    let correct = dataset
        .rows()
        .iter()
        .filter(|r| model.predict(&r.values) == r.label)
        .count();
    println!(
        "background-trained model: {}/{} training rows exact ({} trained total)",
        correct,
        dataset.len(),
        trainer.shutdown()
    );
}
