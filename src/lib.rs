//! Umbrella crate for the OFC reproduction: re-exports the public API of
//! every subsystem crate so applications depend on a single name.
//!
//! OFC (EuroSys '21) is an opportunistic, transparent, elastic in-memory
//! cache for FaaS platforms. The workspace layout mirrors the system:
//!
//! * [`simtime`] — deterministic discrete-event simulation substrate,
//! * [`dtree`] — from-scratch decision-tree ML (J48/C4.5, RandomForest,
//!   RandomTree, HoeffdingTree) with evaluation machinery,
//! * [`objstore`] — Swift-model RSDS (shadow objects, webhooks) and a
//!   Redis-model IMOC baseline,
//! * [`rcstore`] — RAMCloud-model distributed KV store (log-structured
//!   memory, replication, migration-by-promotion, crash recovery),
//! * [`faas`] — OpenWhisk-model platform with the seams OFC hooks into,
//! * [`workloads`] — the 19 multimedia functions, 4 pipelines, and the
//!   FaaSLoad injector of the paper's evaluation,
//! * [`core`] — OFC itself: Predictor/ModelTrainer, CacheAgent,
//!   Proxy/rclib, Monitor, and the assembly,
//! * [`chaos`] — deterministic fault injection (seeded chaos schedules,
//!   retry/backoff policies) for robustness testing.
//!
//! See `examples/quickstart.rs` for a walk-through and `DESIGN.md` for the
//! experiment index.

pub use ofc_chaos as chaos;
pub use ofc_core as core;
pub use ofc_dtree as dtree;
pub use ofc_faas as faas;
pub use ofc_objstore as objstore;
pub use ofc_rcstore as rcstore;
pub use ofc_simtime as simtime;
pub use ofc_workloads as workloads;
